// Property-based tests: randomly generated programs must produce exactly
// the same architectural state through the cycle-accurate pipeline as
// through pure functional execution (the pipeline may never skip,
// duplicate, or corrupt an instruction), must always drain, and must obey
// basic timing bounds. Programs include random ALU/fp/memory operations,
// data-dependent branches, and loops.
#include <gtest/gtest.h>

#include "cache/backend.hpp"
#include "common/rng.hpp"
#include "core/chip.hpp"
#include "exec/thread_group.hpp"
#include "isa/builder.hpp"

namespace csmt {
namespace {

using isa::Op;
using isa::ProgramBuilder;

constexpr Addr kScratchBase = 64 * 1024;
constexpr unsigned kScratchWordsPerThread = 64;

/// Generates a random but well-formed SPMD program: every thread works in
/// its own scratch region (tid-indexed), so functional results are
/// interleaving-independent and comparable against the timing run.
isa::Program random_program(Rng& rng, unsigned body_len) {
  ProgramBuilder b("rand");
  isa::Reg base = b.ireg(), r1 = b.ireg(), r2 = b.ireg(), r3 = b.ireg();
  isa::Freg f1 = b.freg(), f2 = b.freg();

  // base = kScratchBase + tid * scratch_bytes
  b.li(base, kScratchWordsPerThread * 8);
  b.mul(base, ProgramBuilder::tid(), base);
  b.addi(base, base, kScratchBase);
  b.li(r1, static_cast<std::int64_t>(rng.below(1000)) + 1);
  b.li(r2, static_cast<std::int64_t>(rng.below(1000)) + 1);
  b.li(r3, 1);
  b.fld(f1, base, 0);
  b.fld(f2, base, 8);

  auto offset = [&rng]() -> std::int64_t {
    return 8 * rng.below(kScratchWordsPerThread);
  };

  auto emit_random = [&] {
    switch (rng.below(14)) {
      case 0: b.add(r1, r1, r2); break;
      case 1: b.sub(r2, r2, r3); break;
      case 2: b.xor_(r3, r1, r2); break;
      case 3: b.mul(r1, r1, r3); break;
      case 4: b.andi(r2, r2, 0xFFFF); break;
      case 5: b.srli(r1, r1, 1); break;
      case 6: b.ld(r3, base, offset()); break;
      case 7: b.st(base, offset(), r1); break;
      case 8: b.fadd(f1, f1, f2); break;
      case 9: b.fmul(f2, f2, f1); break;
      case 10: b.fld(f2, base, offset()); break;
      case 11: b.fst(base, offset(), f1); break;
      case 12: b.ori(r1, r1, 3); break;
      case 13:
        // A data-dependent (hard to predict) short branch.
        b.if_then(Op::kBne, r3, ProgramBuilder::zero(),
                  [&] { b.addi(r2, r2, 7); });
        break;
    }
  };

  // A random straight-line prologue, a loop with a random body, and a
  // random epilogue.
  for (unsigned i = 0; i < body_len; ++i) emit_random();
  isa::Reg i = b.ireg(), n = b.ireg();
  b.li(n, 20 + rng.below(30));
  b.for_range(i, 0, n, 1, [&] {
    for (unsigned k = 0; k < 6; ++k) emit_random();
  });
  for (unsigned k = 0; k < body_len / 2; ++k) emit_random();

  // Publish the final register state to scratch so memory comparison
  // covers registers too.
  b.st(base, 0, r1);
  b.st(base, 8, r2);
  b.st(base, 16, r3);
  b.fst(base, 24, f1);
  b.fst(base, 32, f2);
  b.halt();
  return b.take();
}

void seed_memory(mem::PagedMemory& memory, unsigned nthreads, Rng& rng) {
  for (unsigned t = 0; t < nthreads; ++t) {
    for (unsigned w = 0; w < kScratchWordsPerThread; ++w) {
      memory.write(kScratchBase + t * kScratchWordsPerThread * 8 + 8 * w,
                   rng.next() % 4096);
    }
  }
}

std::vector<std::uint64_t> snapshot(const mem::PagedMemory& memory,
                                    unsigned nthreads) {
  std::vector<std::uint64_t> out;
  for (unsigned t = 0; t < nthreads; ++t) {
    for (unsigned w = 0; w < kScratchWordsPerThread; ++w) {
      out.push_back(memory.read(kScratchBase +
                                t * kScratchWordsPerThread * 8 + 8 * w));
    }
  }
  return out;
}

struct TimingOutcome {
  Cycle cycles;
  std::uint64_t committed;
};

TimingOutcome run_timing(const core::ArchConfig& cfg,
                         const isa::Program& program,
                         mem::PagedMemory& memory, unsigned nthreads) {
  cache::MemSysParams mp;
  cache::LocalMemoryBackend backend(mp);
  core::Chip chip(0, cfg, mp, backend);
  exec::ThreadGroup group(program, memory, nthreads, 0);
  for (unsigned t = 0; t < nthreads; ++t)
    chip.attach_thread(&group.thread(t));
  Cycle now = 0;
  while (!chip.finished() && now < 5'000'000) {
    chip.tick(now);
    ++now;
  }
  EXPECT_TRUE(chip.finished()) << "random program did not drain";
  const core::ChipStats s = chip.stats();
  return {now, s.committed_useful + s.committed_sync};
}

std::uint64_t run_functional(const isa::Program& program,
                             mem::PagedMemory& memory, unsigned nthreads) {
  exec::ThreadGroup group(program, memory, nthreads, 0);
  exec::DynInst d;
  std::uint64_t steps = 0;
  while (!group.all_done()) {
    for (unsigned t = 0; t < nthreads; ++t) {
      if (!group.thread(t).done()) {
        group.thread(t).step(d);
        ++steps;
      }
    }
  }
  return steps;
}

struct PropertyCase {
  std::uint64_t seed;
  core::ArchKind arch;
  unsigned nthreads;
};

class RandomProgramTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomProgramTest, TimingMatchesFunctionalState) {
  const PropertyCase c = GetParam();
  Rng rng(c.seed);
  const isa::Program program = random_program(rng, 40);

  Rng seed_rng(c.seed ^ 0xABCD);
  mem::PagedMemory functional_mem;
  seed_memory(functional_mem, c.nthreads, seed_rng);
  Rng seed_rng2(c.seed ^ 0xABCD);
  mem::PagedMemory timing_mem;
  seed_memory(timing_mem, c.nthreads, seed_rng2);

  const std::uint64_t insts =
      run_functional(program, functional_mem, c.nthreads);
  const TimingOutcome timing = run_timing(core::arch_preset(c.arch), program,
                                          timing_mem, c.nthreads);

  // 1. The pipeline committed exactly the dynamic instruction stream.
  EXPECT_EQ(timing.committed, insts);
  // 2. Identical final memory (covers registers via the published state).
  EXPECT_EQ(snapshot(functional_mem, c.nthreads),
            snapshot(timing_mem, c.nthreads));
  // 3. Timing sanity: can't beat the chip issue width, can't be absurd.
  EXPECT_GE(timing.cycles * 8, insts / c.nthreads);
  EXPECT_LT(timing.cycles, insts * 64 + 10'000);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> out;
  const core::ArchKind archs[] = {core::ArchKind::kFa1, core::ArchKind::kFa8,
                                  core::ArchKind::kSmt2,
                                  core::ArchKind::kSmt1};
  std::uint64_t seed = 1;
  for (const auto arch : archs) {
    for (const unsigned nt : {1u, 4u, 8u}) {
      if (nt > core::arch_preset(arch).threads_per_chip()) continue;
      for (int rep = 0; rep < 4; ++rep) {
        out.push_back({seed++, arch, nt});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramTest,
                         ::testing::ValuesIn(property_cases()));

}  // namespace
}  // namespace csmt
