// Tests for the MINT-style synchronization layer: SyncManager semantics,
// the ThreadGroup, and the sync-primitive instructions end to end.
#include <gtest/gtest.h>

#include "exec/sync.hpp"
#include "exec/thread_group.hpp"
#include "isa/builder.hpp"

namespace csmt::exec {
namespace {

using isa::ProgramBuilder;

isa::Program trivial_program() {
  ProgramBuilder b("t");
  b.halt();
  return b.take();
}

class SyncManagerTest : public ::testing::Test {
 protected:
  SyncManagerTest() : program_(trivial_program()) {
    for (unsigned i = 0; i < 4; ++i) {
      threads_.push_back(
          std::make_unique<ThreadContext>(i, program_, memory_, i, 4, 0));
    }
  }
  mem::PagedMemory memory_;
  isa::Program program_;
  std::vector<std::unique_ptr<ThreadContext>> threads_;
  SyncManager sync_;
};

TEST_F(SyncManagerTest, BarrierBlocksUntilLastArrives) {
  EXPECT_FALSE(sync_.barrier_arrive(64, threads_[0].get(), 3));
  EXPECT_TRUE(threads_[0]->sync_blocked());
  EXPECT_FALSE(sync_.barrier_arrive(64, threads_[1].get(), 3));
  EXPECT_TRUE(threads_[1]->sync_blocked());
  // Last arriver releases everyone and is itself never blocked.
  EXPECT_TRUE(sync_.barrier_arrive(64, threads_[2].get(), 3));
  EXPECT_FALSE(threads_[0]->sync_blocked());
  EXPECT_FALSE(threads_[1]->sync_blocked());
  EXPECT_FALSE(threads_[2]->sync_blocked());
  EXPECT_EQ(sync_.barrier_episodes(), 1u);
}

TEST_F(SyncManagerTest, BarrierIsReusable) {
  for (int round = 0; round < 3; ++round) {
    EXPECT_FALSE(sync_.barrier_arrive(64, threads_[0].get(), 2));
    EXPECT_TRUE(sync_.barrier_arrive(64, threads_[1].get(), 2));
    EXPECT_FALSE(threads_[0]->sync_blocked());
  }
  EXPECT_EQ(sync_.barrier_episodes(), 3u);
}

TEST_F(SyncManagerTest, SingleParticipantBarrierNeverBlocks) {
  EXPECT_TRUE(sync_.barrier_arrive(64, threads_[0].get(), 1));
  EXPECT_FALSE(threads_[0]->sync_blocked());
}

TEST_F(SyncManagerTest, IndependentBarrierAddresses) {
  EXPECT_FALSE(sync_.barrier_arrive(64, threads_[0].get(), 2));
  EXPECT_FALSE(sync_.barrier_arrive(128, threads_[1].get(), 2));
  EXPECT_TRUE(threads_[0]->sync_blocked());
  EXPECT_TRUE(threads_[1]->sync_blocked());
  EXPECT_TRUE(sync_.barrier_arrive(128, threads_[2].get(), 2));
  EXPECT_TRUE(threads_[0]->sync_blocked());   // barrier 64 still waiting
  EXPECT_FALSE(threads_[1]->sync_blocked());  // barrier 128 released
}

TEST_F(SyncManagerTest, LockIsImmediateWhenFree) {
  EXPECT_TRUE(sync_.lock_acquire(64, threads_[0].get()));
  EXPECT_FALSE(threads_[0]->sync_blocked());
}

TEST_F(SyncManagerTest, LockBlocksAndHandsOffFifo) {
  EXPECT_TRUE(sync_.lock_acquire(64, threads_[0].get()));
  EXPECT_FALSE(sync_.lock_acquire(64, threads_[1].get()));
  EXPECT_FALSE(sync_.lock_acquire(64, threads_[2].get()));
  EXPECT_TRUE(threads_[1]->sync_blocked());
  EXPECT_TRUE(threads_[2]->sync_blocked());
  EXPECT_EQ(sync_.lock_contentions(), 2u);

  sync_.lock_release(64, threads_[0].get());
  EXPECT_FALSE(threads_[1]->sync_blocked());  // FIFO: t1 wakes first
  EXPECT_TRUE(threads_[2]->sync_blocked());

  sync_.lock_release(64, threads_[1].get());
  EXPECT_FALSE(threads_[2]->sync_blocked());
  sync_.lock_release(64, threads_[2].get());
  // Free again.
  EXPECT_TRUE(sync_.lock_acquire(64, threads_[3].get()));
}

TEST_F(SyncManagerTest, BlockedWaitersTracksBarriersAndLocks) {
  // The scheduler's quiescence accounting reads this (DESIGN.md §8): it
  // must count barrier arrivals and lock queue entries, not lock holders.
  EXPECT_EQ(sync_.blocked_waiters(), 0u);
  sync_.barrier_arrive(64, threads_[0].get(), 3);
  EXPECT_EQ(sync_.blocked_waiters(), 1u);
  sync_.lock_acquire(128, threads_[1].get());  // uncontended: not blocked
  EXPECT_EQ(sync_.blocked_waiters(), 1u);
  sync_.lock_acquire(128, threads_[2].get());  // queued behind t1
  EXPECT_EQ(sync_.blocked_waiters(), 2u);
  sync_.lock_release(128, threads_[1].get());  // hands off to t2
  EXPECT_EQ(sync_.blocked_waiters(), 1u);
  sync_.barrier_arrive(64, threads_[1].get(), 3);
  sync_.barrier_arrive(64, threads_[3].get(), 3);  // releases the barrier
  EXPECT_EQ(sync_.blocked_waiters(), 0u);
}

TEST_F(SyncManagerTest, ReleaseByNonHolderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_TRUE(sync_.lock_acquire(64, threads_[0].get()));
  ASSERT_DEATH(sync_.lock_release(64, threads_[1].get()), "non-holder");
}

// ---------- sync primitives through the interpreter ----------------------

TEST(SyncPrimitives, BarrierProgramCompletesFunctionally) {
  ProgramBuilder b("bar");
  isa::Reg bar = b.ireg();
  b.li(bar, 64);
  b.barrier(bar, ProgramBuilder::nthreads());
  b.barrier(bar, ProgramBuilder::nthreads());
  b.halt();
  const isa::Program p = b.take();
  mem::PagedMemory memory;
  ThreadGroup g(p, memory, 4, 0);

  // Round-robin functional stepping, skipping blocked threads exactly as
  // the timing model would.
  DynInst d;
  unsigned steps = 0;
  while (!g.all_done() && steps < 10000) {
    for (unsigned t = 0; t < g.size(); ++t) {
      auto& tc = g.thread(t);
      if (!tc.done() && !tc.sync_blocked()) tc.step(d);
    }
    ++steps;
  }
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(g.sync().barrier_episodes(), 2u);
}

TEST(SyncPrimitives, LockSerializesCriticalSections) {
  // Each thread increments a shared counter inside a lock; with blocking
  // locks the final count is exact regardless of interleaving.
  ProgramBuilder b("lk");
  isa::Reg lock = b.ireg(), addr = b.ireg(), v = b.ireg();
  b.li(lock, 64);
  b.li(addr, 128);
  b.lock_acquire(lock);
  b.ld(v, addr, 0);
  b.addi(v, v, 1);
  b.st(addr, 0, v);
  b.lock_release(lock);
  b.halt();
  const isa::Program p = b.take();
  mem::PagedMemory memory;
  ThreadGroup g(p, memory, 6, 0);
  DynInst d;
  unsigned steps = 0;
  while (!g.all_done() && steps < 10000) {
    for (unsigned t = 0; t < g.size(); ++t) {
      auto& tc = g.thread(t);
      if (!tc.done() && !tc.sync_blocked()) tc.step(d);
    }
    ++steps;
  }
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(memory.read(128), 6u);
}

TEST(ThreadGroup, CreatesTidSequence) {
  ProgramBuilder b("t");
  b.halt();
  const isa::Program p = b.take();
  mem::PagedMemory memory;
  ThreadGroup g(p, memory, 5, 0x1000);
  EXPECT_EQ(g.size(), 5u);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(g.thread(i).ireg(isa::kRegTid), i);
    EXPECT_EQ(g.thread(i).ireg(isa::kRegNThreads), 5u);
    EXPECT_EQ(g.thread(i).ireg(isa::kRegArgs), 0x1000u);
  }
  EXPECT_FALSE(g.all_done());
  DynInst d;
  for (unsigned i = 0; i < 5; ++i) g.thread(i).step(d);
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(g.total_instret(), 5u);
}

TEST(SyncPrimitivesDeath, PrimitiveWithoutManagerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ProgramBuilder b("nb");
  isa::Reg bar = b.ireg();
  b.li(bar, 64);
  b.barrier(bar, ProgramBuilder::nthreads());
  b.halt();
  const isa::Program p = b.take();
  ASSERT_DEATH(
      {
        mem::PagedMemory memory;
        ThreadContext tc(0, p, memory, 0, 1, 0);  // no SyncManager
        DynInst d;
        while (tc.step(d)) {
        }
      },
      "SyncManager");
}

}  // namespace
}  // namespace csmt::exec
