// Unit tests for src/common: statistics primitives, formatting, tables,
// the stacked-bar renderer, and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace csmt {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMinMaxMean) {
  RunningStat s;
  for (const double v : {3.0, -1.0, 7.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double v = i * 1.5 - 3.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, empty;
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStat c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(4);
  h.add(0);
  h.add(3, 2);
  h.add(99);  // clamps into the last bucket
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(3), 3u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.75);
}

TEST(Histogram, ZeroBucketsClampsToOne) {
  // Regression: Histogram(0) used to underflow `counts_.size() - 1` in
  // add()'s clamp and write out of bounds.
  Histogram h(0);
  EXPECT_EQ(h.buckets(), 1u);
  h.add(0);
  h.add(99, 2);  // clamps into the single bucket
  EXPECT_EQ(h.at(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(Histogram, MeanWeighted) {
  Histogram h(10);
  h.add(2, 3);
  h.add(8, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(Format, CountGroupsDigits) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12345678901ull), "12,345,678,901");
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.5), "50.0%");
  EXPECT_EQ(format_percent(0.123456, 2), "12.35%");
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t;
  t.header({"a", "bbbb"});
  t.row({"cccc", "d"});
  const std::string out = t.render();
  // Each line has the same column start offsets.
  const auto nl = out.find('\n');
  const std::string line0 = out.substr(0, nl);
  EXPECT_NE(line0.find("a"), std::string::npos);
  EXPECT_NE(out.find("cccc"), std::string::npos);
  // Separator rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTable, HandlesRaggedRows) {
  AsciiTable t;
  t.header({"x", "y", "z"});
  t.row({"1"});
  EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

TEST(StackedBarChart, RendersSegmentsAndTotals) {
  StackedBarChart c({"useful", "waste"}, 1.0);
  c.add({"run", {3.0, 2.0}});
  const std::string out = c.render();
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("useful"), std::string::npos);
  EXPECT_NE(out.find("5.0"), std::string::npos);  // the bar total
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  // All buckets hit over 1000 draws.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace csmt
