// csmt::telemetry (DESIGN.md §12): registry snapshot behavior under
// concurrent publishers, series ring semantics, the regime classifier's
// thresholds, probe gating in run_experiment, the HTTP endpoint end to
// end, and the no-perturbation contract — a serving sweep's counters must
// be identical to a non-serving one.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/probe.hpp"
#include "telemetry/regime.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CSMT_TELEMETRY_TEST_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace csmt;
using telemetry::Regime;
using telemetry::classify_regime;
using telemetry::regime_name;

// ---------------------------------------------------------------------------
// Regime classifier: deterministic thresholds on the quiet-cycle fraction.

TEST(RegimeTest, ThresholdBoundaries) {
  EXPECT_EQ(classify_regime(0.0), Regime::kBusy);
  EXPECT_EQ(classify_regime(0.2499), Regime::kBusy);
  EXPECT_EQ(classify_regime(telemetry::kBusyCeiling), Regime::kMixed);
  EXPECT_EQ(classify_regime(0.5), Regime::kMixed);
  EXPECT_EQ(classify_regime(0.7499), Regime::kMixed);
  EXPECT_EQ(classify_regime(telemetry::kIdleFloor), Regime::kIdle);
  EXPECT_EQ(classify_regime(1.0), Regime::kIdle);
}

TEST(RegimeTest, SyntheticQuietFractionProfiles) {
  // Profiles as (quiet_cycles, sim_cycles) counter pairs, the way the
  // fraction is actually derived in SimSpeed::quiet_fraction().
  struct Profile {
    std::uint64_t quiet, total;
    Regime want;
  };
  const Profile profiles[] = {
      {0, 1000, Regime::kBusy},       // --no-skip: all full ticks
      {249, 1000, Regime::kBusy},     // just under the busy ceiling
      {250, 1000, Regime::kMixed},    // exactly at the ceiling
      {500, 1000, Regime::kMixed},
      {749, 1000, Regime::kMixed},    // just under the idle floor
      {750, 1000, Regime::kIdle},     // exactly at the floor
      {1000, 1000, Regime::kIdle},    // fully quiescent
  };
  for (const Profile& p : profiles) {
    const double f =
        static_cast<double>(p.quiet) / static_cast<double>(p.total);
    EXPECT_EQ(classify_regime(f), p.want)
        << p.quiet << "/" << p.total << " -> " << regime_name(p.want);
  }
}

TEST(RegimeTest, Names) {
  EXPECT_STREQ(regime_name(Regime::kBusy), "busy");
  EXPECT_STREQ(regime_name(Regime::kIdle), "idle");
  EXPECT_STREQ(regime_name(Regime::kMixed), "mixed");
}

// ---------------------------------------------------------------------------
// Registry primitives.

TEST(RegistryTest, CounterAndGaugeBasics) {
  telemetry::Registry reg;
  telemetry::Counter& c = reg.counter("a.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&reg.counter("a.count"), &c);

  telemetry::Gauge& g = reg.gauge("a.gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(-2.5);
  EXPECT_EQ(g.value(), -2.5);
  g.set(1e300);
  EXPECT_EQ(g.value(), 1e300);
}

TEST(RegistryTest, SeriesRingKeepsMostRecent) {
  telemetry::Registry reg;
  telemetry::Series& s = reg.series("a.series", 4);
  std::uint64_t total = 0;
  EXPECT_TRUE(s.snapshot(&total).empty());
  EXPECT_EQ(total, 0u);

  for (int i = 1; i <= 3; ++i) s.push(i);
  EXPECT_EQ(s.snapshot(&total), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(total, 3u);

  for (int i = 4; i <= 6; ++i) s.push(i);
  // Capacity 4: the ring holds the most recent points, oldest first.
  EXPECT_EQ(s.snapshot(&total), (std::vector<double>{3, 4, 5, 6}));
  EXPECT_EQ(total, 6u);
}

TEST(RegistryTest, SnapshotIsStableWithoutWrites) {
  telemetry::Registry reg;
  reg.counter("x").add(7);
  reg.gauge("y").set(3.5);
  reg.series("z", 8).push(1.25);

  const json::Value a = reg.snapshot_json();
  const json::Value b = reg.snapshot_json();
  // Identical content (names in deterministic sorted order), except the
  // per-snapshot sequence number.
  ASSERT_NE(a.find("counters"), nullptr);
  EXPECT_EQ(a.find("counters")->dump(), b.find("counters")->dump());
  EXPECT_EQ(a.find("gauges")->dump(), b.find("gauges")->dump());
  EXPECT_EQ(a.find("series")->dump(), b.find("series")->dump());
  EXPECT_EQ(a.find("seq")->as_u64() + 1, b.find("seq")->as_u64());
}

TEST(RegistryTest, SnapshotUnderConcurrentPublishers) {
  telemetry::Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;

  std::atomic<bool> go{false};
  std::atomic<bool> stop_snapshots{false};
  std::vector<json::Value> snaps;

  // A wall-clock consumer snapshotting while publishers hammer the
  // registry — the exact shape of the HTTP endpoint's sampling.
  std::thread snapshotter([&] {
    while (!stop_snapshots.load()) snaps.push_back(reg.snapshot_json());
  });

  std::vector<std::thread> publishers;
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&reg, &go, t] {
      while (!go.load()) {
      }
      telemetry::Counter& shared = reg.counter("shared.count");
      telemetry::Gauge& mine = reg.gauge("g." + std::to_string(t));
      telemetry::Series& series = reg.series("s." + std::to_string(t), 16);
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        shared.add();
        mine.set(static_cast<double>(i));
        if ((i & 1023) == 0) series.push(static_cast<double>(i));
      }
    });
  }
  go.store(true);
  for (std::thread& t : publishers) t.join();
  stop_snapshots.store(true);
  snapshotter.join();

  // Exact final total: no publication was lost or double-counted.
  EXPECT_EQ(reg.counter("shared.count").value(), kThreads * kAddsPerThread);

  // Every concurrent snapshot is well-formed, counters are monotone across
  // snapshots, and no value ever exceeds the true total (a torn read would
  // produce garbage far outside this range).
  std::uint64_t prev = 0;
  for (const json::Value& s : snaps) {
    const json::Value* counters = s.find("counters");
    ASSERT_NE(counters, nullptr);
    if (const json::Value* c = counters->find("shared.count")) {
      const std::uint64_t v = c->as_u64();
      EXPECT_GE(v, prev);
      EXPECT_LE(v, kThreads * kAddsPerThread);
      prev = v;
    }
  }
}

// ---------------------------------------------------------------------------
// Probe gating in run_experiment: per-run metrics exist only while a
// consumer is attached; cheap aggregates are always live.

sim::ExperimentSpec tiny_spec() {
  sim::ExperimentSpec spec;
  spec.workload = "swim";
  spec.arch = core::ArchKind::kSmt2;
  spec.chips = 1;
  spec.scale = 1;
  return spec;
}

bool has_run_metric(const json::Value& snap) {
  const json::Value* gauges = snap.find("gauges");
  if (!gauges) return false;
  // Object keys are visible only through dump() here; a "run.NNNN." gauge
  // name is unambiguous in the serialized form.
  return gauges->dump().find("\"run.") != std::string::npos;
}

TEST(ProbeTest, RunProbesRegisterOnlyWhenEnabled) {
  telemetry::Registry& reg = telemetry::Registry::global();
  reg.reset_for_test();
  reg.set_enabled(false);

  const sim::ExperimentResult r1 = sim::run_experiment(tiny_spec());
  EXPECT_TRUE(r1.validated);
  json::Value snap = reg.snapshot_json();
  ASSERT_NE(snap.find("counters"), nullptr);
  EXPECT_EQ(snap.find("counters")->find("sim.runs_completed")->as_u64(), 1u);
  EXPECT_FALSE(has_run_metric(snap));

  reg.set_enabled(true);
  const sim::ExperimentResult r2 = sim::run_experiment(tiny_spec());
  reg.set_enabled(false);
  snap = reg.snapshot_json();
  EXPECT_EQ(snap.find("counters")->find("sim.runs_completed")->as_u64(), 2u);
  EXPECT_TRUE(has_run_metric(snap));
  // The probe finished in the kDone state with a classified regime.
  const std::string gauges = snap.find("gauges")->dump();
  EXPECT_NE(gauges.find(".state\":1"), std::string::npos) << gauges;

  // The probe never perturbs the run: identical counters with and without.
  EXPECT_EQ(sim::to_json(r1).find("stats")->dump(),
            sim::to_json(r2).find("stats")->dump());
}

// ---------------------------------------------------------------------------
// HTTP endpoint, end to end against a live registry + sweep.

#if CSMT_TELEMETRY_TEST_POSIX

/// Minimal blocking HTTP client: sends one GET and reads until EOF, or —
/// for SSE — until `stop_after` occurrences of "event:" arrived.
std::string http_get(std::uint16_t port, const std::string& path,
                     int stop_after_events = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "cannot connect to 127.0.0.1:" << port;
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
    if (stop_after_events > 0) {
      int events = 0;
      for (std::size_t pos = 0;
           (pos = out.find("event:", pos)) != std::string::npos; ++pos)
        ++events;
      if (events >= stop_after_events) break;
    }
  }
  ::close(fd);
  return out;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ServerTest, MetricsEventsAndErrorsAgainstLiveSweep) {
  telemetry::Registry& reg = telemetry::Registry::global();
  reg.reset_for_test();

  telemetry::Server server;
  server.set_sse_interval_ms(10);
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(reg.enabled()) << "serving must enable per-run probes";

  // A live two-point sweep publishing into the served registry.
  sweep::SweepOptions options;
  options.progress = false;
  sweep::SweepSpec grid;
  grid.workloads = {"swim"};
  grid.archs = {core::ArchKind::kSmt1, core::ArchKind::kSmt2};
  grid.scales = {1};
  const auto serving = sweep::SweepRunner(options).run(grid);
  ASSERT_EQ(serving.size(), 2u);

  // /metrics: one JSON snapshot carrying the sweep's publications.
  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/json"), std::string::npos);
  const auto doc = json::Value::parse(body_of(metrics));
  ASSERT_TRUE(doc.has_value()) << body_of(metrics);
  EXPECT_EQ(doc->find("counters")->find("sim.runs_completed")->as_u64(), 2u);
  EXPECT_EQ(doc->find("gauges")->find("sweep.points_total")->as_number(), 2.0);
  EXPECT_EQ(doc->find("gauges")->find("sweep.points_done")->as_number(), 2.0);
  EXPECT_TRUE(has_run_metric(*doc));

  // /events: an SSE stream of the same snapshots.
  const std::string events = http_get(server.port(), "/events", 2);
  EXPECT_NE(events.find("text/event-stream"), std::string::npos);
  EXPECT_NE(events.find("event: snapshot\ndata: {"), std::string::npos);

  // The embedded console and the error paths.
  EXPECT_NE(http_get(server.port(), "/").find("fleet console"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);

  server.stop();
  EXPECT_FALSE(reg.enabled()) << "stop() must restore the previous gate";

  // No-perturbation (the acceptance contract): the same grid, served vs
  // not, produces identical machine counters, spec, validation, and the
  // derived regime tag — everything in the artifact except host wall time.
  const auto quiet = sweep::SweepRunner(options).run(grid);
  ASSERT_EQ(quiet.size(), serving.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    const json::Value a = sim::to_json(serving[i]);
    const json::Value b = sim::to_json(quiet[i]);
    EXPECT_EQ(a.find("spec")->dump(), b.find("spec")->dump());
    EXPECT_EQ(a.find("stats")->dump(), b.find("stats")->dump());
    EXPECT_EQ(a.find("validated")->dump(), b.find("validated")->dump());
    EXPECT_EQ(a.find("sim_speed")->find("regime")->dump(),
              b.find("sim_speed")->find("regime")->dump());
    EXPECT_EQ(a.find("sim_speed")->find("sim_cycles")->as_u64(),
              b.find("sim_speed")->find("sim_cycles")->as_u64());
    EXPECT_EQ(a.find("sim_speed")->find("quiet_cycles")->as_u64(),
              b.find("sim_speed")->find("quiet_cycles")->as_u64());
  }
}

// Keep last: serve_global starts a server that lives until process exit.
TEST(ServerTest, ServeGlobalIsProcessWideAndFirstCallerWins) {
  const std::uint16_t port = telemetry::serve_global(0);
  ASSERT_GT(port, 0);
  // Later callers (another sweep in the same process) get the same server.
  EXPECT_EQ(telemetry::serve_global(0), port);
  EXPECT_EQ(telemetry::serve_global(12345), port);
  EXPECT_TRUE(telemetry::Registry::global().enabled());
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
}

#endif  // CSMT_TELEMETRY_TEST_POSIX

}  // namespace
