// Tests for multiprogrammed runs through the unified Machine::run(Mix)
// entry point and the timing address-space isolation they rely on.
#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace csmt::sim {
namespace {

using isa::ProgramBuilder;

isa::Program counted_loop(unsigned iters) {
  ProgramBuilder b("loop");
  isa::Reg r = b.ireg(), i = b.ireg(), n = b.ireg();
  b.li(r, 1);
  b.li(n, iters);
  b.for_range(i, 0, n, 1, [&] { b.add(r, r, r); });
  b.halt();
  return b.take();
}

TEST(MultiProgram, TwoJobsCompleteAndValidate) {
  MachineConfig mc;
  mc.arch = core::arch_preset(core::ArchKind::kSmt2);
  Machine machine(mc);

  const auto wla = workloads::make_workload("vpenta");
  const auto wlb = workloads::make_workload("fmm");
  mem::PagedMemory mem_a, mem_b;
  const auto build_a = wla->build(mem_a, 4, 1);
  const auto build_b = wlb->build(mem_b, 4, 1);
  const std::vector<Job> jobs = {
      {&build_a.program, &mem_a, build_a.args_base, 4},
      {&build_b.program, &mem_b, build_b.args_base, 4},
  };
  const MultiRunStats r = machine.run(Mix{jobs});
  EXPECT_FALSE(r.combined.timed_out);
  ASSERT_EQ(r.job_finish.size(), 2u);
  EXPECT_GT(r.job_finish[0], 0u);
  EXPECT_GT(r.job_finish[1], 0u);
  // Makespan = last job's functional completion plus the final pipeline
  // drain (last instructions still commit after the thread halts).
  const Cycle last = std::max(r.job_finish[0], r.job_finish[1]);
  EXPECT_GE(r.makespan, last);
  EXPECT_LE(r.makespan, last + 16);
  // Both jobs produced numerically correct results despite sharing the
  // machine (their functional memories are independent).
  EXPECT_TRUE(wla->validate(mem_a, build_a, 4, 1));
  EXPECT_TRUE(wlb->validate(mem_b, build_b, 4, 1));
}

TEST(MultiProgram, JobsRunInDisjointTimingAddressSpaces) {
  // Two identical jobs touch the same virtual addresses; without per-job
  // address-space tags they would alias in the shared caches and merge on
  // MSHRs. The tags make their line footprints disjoint, so per-job
  // results and the run itself stay well-formed.
  MachineConfig mc;
  mc.arch = core::arch_preset(core::ArchKind::kSmt2);
  Machine machine(mc);
  const isa::Program p = counted_loop(200);
  mem::PagedMemory mem_a, mem_b;
  const std::vector<Job> jobs = {
      {&p, &mem_a, 0, 4},
      {&p, &mem_b, 0, 4},
  };
  const MultiRunStats r = machine.run(Mix{jobs});
  EXPECT_FALSE(r.combined.timed_out);
  EXPECT_GT(r.combined.committed_useful, 2u * 4u * 200u);
}

TEST(MultiProgram, SingleJobMatchesPlainRun) {
  const isa::Program p = counted_loop(300);
  MachineConfig mc;
  mc.arch = core::arch_preset(core::ArchKind::kFa2);

  Machine m1(mc);
  mem::PagedMemory mem1;
  const RunStats plain =
      m1.run(Mix::single(p, mem1, 0, mc.total_threads())).combined;

  Machine m2(mc);
  mem::PagedMemory mem2;
  const MultiRunStats multi =
      m2.run(Mix{{{&p, &mem2, 0, mc.total_threads()}}});
  EXPECT_EQ(multi.makespan, plain.cycles);
  EXPECT_EQ(multi.combined.committed_useful, plain.committed_useful);
}

TEST(MultiProgram, SmtAbsorbsMixBetterThanFa) {
  // The headline of extension E1 at test scale: the SMT2 makespan for a
  // serial-heavy + parallel pair beats the FA8 makespan.
  auto run_mix = [](core::ArchKind arch) {
    MachineConfig mc;
    mc.arch = core::arch_preset(arch);
    Machine machine(mc);
    const auto wla = workloads::make_workload("tomcatv");
    const auto wlb = workloads::make_workload("ocean");
    mem::PagedMemory mem_a, mem_b;
    const auto ba = wla->build(mem_a, 4, 1);
    const auto bb = wlb->build(mem_b, 4, 1);
    const std::vector<Job> jobs = {
        {&ba.program, &mem_a, ba.args_base, 4},
        {&bb.program, &mem_b, bb.args_base, 4},
    };
    return machine.run(Mix{jobs}).makespan;
  };
  EXPECT_LT(run_mix(core::ArchKind::kSmt2), run_mix(core::ArchKind::kFa8));
}

TEST(MultiProgramDeath, MismatchedThreadTotalsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        MachineConfig mc;
        mc.arch = core::arch_preset(core::ArchKind::kSmt2);
        Machine machine(mc);
        const isa::Program p = counted_loop(10);
        mem::PagedMemory mem_a;
        machine.run(Mix{{{&p, &mem_a, 0, 3}}});  // 3 != 8 contexts
      },
      "sum");
}

TEST(MultiProgramDeath, ZeroThreadJobAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        MachineConfig mc;
        mc.arch = core::arch_preset(core::ArchKind::kSmt2);
        Machine machine(mc);
        const isa::Program p = counted_loop(10);
        mem::PagedMemory mem_a;
        mem::PagedMemory mem_b;
        machine.run(Mix{{{&p, &mem_a, 0, 8}, {&p, &mem_b, 0, 0}}});
      },
      "at least one thread");
}

}  // namespace
}  // namespace csmt::sim
