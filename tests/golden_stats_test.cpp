// Golden-stats gate for the hot-path optimizations (DESIGN.md §9): the
// optimized kernel (zero-allocation tick, integer slot accounting, amortized
// quiescence probing, memory-system fast paths) must leave every RunStats
// field — counters, the fractional slot histogram, derived rates, and the
// epoch time series — exactly equal to the per-cycle --no-skip reference
// across the paper grid. Unlike scheduler_test's serialized-JSON comparison,
// this suite asserts field by field so a divergence names the exact counter
// that moved.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/machine.hpp"

namespace csmt::sim {
namespace {

void expect_slots_equal(const core::SlotStats& a, const core::SlotStats& b,
                        const std::string& where) {
  for (std::size_t i = 0; i < core::kNumSlots; ++i) {
    EXPECT_EQ(a.slots[i], b.slots[i])
        << where << " slot[" << core::slot_name(static_cast<core::Slot>(i))
        << "]";
  }
}

void expect_epoch_counters_equal(const obs::EpochCounters& a,
                                 const obs::EpochCounters& b,
                                 const std::string& where) {
  EXPECT_EQ(a.committed_useful, b.committed_useful) << where;
  EXPECT_EQ(a.committed_sync, b.committed_sync) << where;
  EXPECT_EQ(a.fetched, b.fetched) << where;
  expect_slots_equal(a.slots, b.slots, where);
  EXPECT_EQ(a.loads, b.loads) << where;
  EXPECT_EQ(a.stores, b.stores) << where;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << where;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << where;
  EXPECT_EQ(a.tlb_misses, b.tlb_misses) << where;
  EXPECT_EQ(a.bank_rejections, b.bank_rejections) << where;
  EXPECT_EQ(a.mshr_rejections, b.mshr_rejections) << where;
}

void expect_stats_equal(const RunStats& a, const RunStats& b,
                        const std::string& where) {
  EXPECT_EQ(a.cycles, b.cycles) << where;
  EXPECT_EQ(a.timed_out, b.timed_out) << where;
  EXPECT_EQ(a.committed_useful, b.committed_useful) << where;
  EXPECT_EQ(a.committed_sync, b.committed_sync) << where;
  EXPECT_EQ(a.fetched, b.fetched) << where;
  // Doubles compare with EXPECT_EQ on purpose: the contract is bit
  // identity, not tolerance.
  EXPECT_EQ(a.avg_running_threads, b.avg_running_threads) << where;
  expect_slots_equal(a.slots, b.slots, where);

  EXPECT_EQ(a.predictor.cond_lookups, b.predictor.cond_lookups) << where;
  EXPECT_EQ(a.predictor.cond_mispredicts, b.predictor.cond_mispredicts)
      << where;
  EXPECT_EQ(a.predictor.btb_misses, b.predictor.btb_misses) << where;

  EXPECT_EQ(a.mem.loads, b.mem.loads) << where;
  EXPECT_EQ(a.mem.stores, b.mem.stores) << where;
  for (std::size_t i = 0; i < a.mem.by_level.size(); ++i) {
    EXPECT_EQ(a.mem.by_level[i], b.mem.by_level[i])
        << where << " by_level[" << i << "]";
  }
  EXPECT_EQ(a.mem.bank_rejections, b.mem.bank_rejections) << where;
  EXPECT_EQ(a.mem.mshr_rejections, b.mem.mshr_rejections) << where;
  EXPECT_EQ(a.mem.upgrades, b.mem.upgrades) << where;
  EXPECT_EQ(a.mem.l1_cross_invalidations, b.mem.l1_cross_invalidations)
      << where;
  EXPECT_EQ(a.mem.l1_miss_rate, b.mem.l1_miss_rate) << where;
  EXPECT_EQ(a.mem.l2_miss_rate, b.mem.l2_miss_rate) << where;
  EXPECT_EQ(a.mem.tlb_miss_rate, b.mem.tlb_miss_rate) << where;

  ASSERT_EQ(a.dash.has_value(), b.dash.has_value()) << where;
  if (a.dash) {
    EXPECT_EQ(a.dash->fetches, b.dash->fetches) << where;
    EXPECT_EQ(a.dash->remote_fetches, b.dash->remote_fetches) << where;
    EXPECT_EQ(a.dash->interventions, b.dash->interventions) << where;
    EXPECT_EQ(a.dash->dirty_remote_supplies, b.dash->dirty_remote_supplies)
        << where;
    EXPECT_EQ(a.dash->invalidations_sent, b.dash->invalidations_sent)
        << where;
    EXPECT_EQ(a.dash->upgrades, b.dash->upgrades) << where;
    EXPECT_EQ(a.dash->writebacks, b.dash->writebacks) << where;
  }

  ASSERT_EQ(a.epochs.size(), b.epochs.size()) << where;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    const std::string ep = where + " epoch[" + std::to_string(e) + "]";
    EXPECT_EQ(a.epochs[e].begin, b.epochs[e].begin) << ep;
    EXPECT_EQ(a.epochs[e].end, b.epochs[e].end) << ep;
    EXPECT_EQ(a.epochs[e].avg_running_threads, b.epochs[e].avg_running_threads)
        << ep;
    expect_epoch_counters_equal(a.epochs[e].counters, b.epochs[e].counters,
                                ep);
  }
}

TEST(GoldenStats, PaperGridMatchesNoSkipFieldByField) {
  const std::vector<core::ArchKind> archs = {
      core::ArchKind::kFa1, core::ArchKind::kFa2, core::ArchKind::kSmt2,
      core::ArchKind::kSmt4};
  const std::vector<std::string> workloads = {"swim", "mgrid", "ocean"};
  for (const unsigned chips : {1u, 4u}) {
    for (const core::ArchKind arch : archs) {
      for (const std::string& wl : workloads) {
        ExperimentSpec spec;
        spec.workload = wl;
        spec.arch = arch;
        spec.chips = chips;
        spec.scale = 1;
        spec.metrics_interval = 128;  // cover the epoch series too

        spec.no_skip = false;
        const ExperimentResult fast = run_experiment(spec);
        spec.no_skip = true;
        const ExperimentResult golden = run_experiment(spec);

        ASSERT_EQ(golden.sim_speed.quiet_cycles, 0u);
        const std::string where = wl + "/" + core::arch_name(arch) +
                                  "/chips=" + std::to_string(chips);
        expect_stats_equal(fast.stats, golden.stats, where);

        // Parallel axis (DESIGN.md §13): the pooled kernel must hit the
        // same per-cycle golden reference, not merely match the other
        // fast kernel.
        if (chips > 1) {
          spec.no_skip = false;
          spec.parallel_chips = chips;
          const ExperimentResult pooled = run_experiment(spec);
          expect_stats_equal(pooled.stats, golden.stats, where + "/parallel");
          spec.parallel_chips = 0;
        }
      }
    }
  }
}

}  // namespace
}  // namespace csmt::sim
