// Section 2 model tests: delivered-performance formulas, region
// classification, and the model's central property — the SMT optimal
// region is a superset of the FA optimal region (checked as a sweep).
#include <gtest/gtest.h>

#include "model/parallelism_model.hpp"

namespace csmt::model {
namespace {

using core::ArchKind;

TEST(Shapes, PresetsMatchTable2) {
  const ArchShape fa8 = ArchShape::from_preset(ArchKind::kFa8);
  EXPECT_FALSE(fa8.smt);
  EXPECT_EQ(fa8.max_threads, 8u);
  EXPECT_DOUBLE_EQ(fa8.max_width, 1.0);

  const ArchShape smt2 = ArchShape::from_preset(ArchKind::kSmt2);
  EXPECT_TRUE(smt2.smt);
  EXPECT_EQ(smt2.max_threads, 8u);
  EXPECT_DOUBLE_EQ(smt2.max_width, 4.0);
  EXPECT_DOUBLE_EQ(smt2.issue_budget, 8.0);
}

TEST(Delivered, FaIsMinTimesMin) {
  const ArchShape fa2 = ArchShape::from_preset(ArchKind::kFa2);
  // FA2: 2 threads x 4-issue.
  EXPECT_DOUBLE_EQ(delivered_performance(fa2, {"", 5, 3}), 2 * 3.0);
  EXPECT_DOUBLE_EQ(delivered_performance(fa2, {"", 1, 6}), 1 * 4.0);
  EXPECT_DOUBLE_EQ(delivered_performance(fa2, {"", 2, 4}), 8.0);
  EXPECT_DOUBLE_EQ(delivered_performance(fa2, {"", 0.5, 2}), 1.0);
}

TEST(Delivered, SmtSlidesAlongHyperbola) {
  const ArchShape smt1 = ArchShape::from_preset(ArchKind::kSmt1);
  // The centralized SMT adapts fully: perf = min(demand, 8).
  EXPECT_DOUBLE_EQ(delivered_performance(smt1, {"", 5, 3}), 8.0);
  EXPECT_DOUBLE_EQ(delivered_performance(smt1, {"", 2, 2}), 4.0);
  EXPECT_DOUBLE_EQ(delivered_performance(smt1, {"", 1, 6}), 6.0);
  EXPECT_DOUBLE_EQ(delivered_performance(smt1, {"", 8, 1}), 8.0);
}

TEST(Delivered, ClusteredSmtIsWidthCapped) {
  const ArchShape smt2 = ArchShape::from_preset(ArchKind::kSmt2);
  // ILP above 4 per thread cannot be exploited (the paper's Y=4 line).
  EXPECT_DOUBLE_EQ(delivered_performance(smt2, {"", 1, 6}), 4.0);
  EXPECT_DOUBLE_EQ(delivered_performance(smt2, {"", 2, 6}), 8.0);
  // Below the cap it behaves like the centralized SMT.
  EXPECT_DOUBLE_EQ(delivered_performance(smt2, {"", 5, 1.5}), 7.5);
}

TEST(Delivered, PaperExampleApplicationA) {
  // Figure 1: A = (5 threads, 3 ILP). FA2 extracts only 2x3 = 6;
  // SMT2 extracts the full 8 (e.g. as ~2.67 threads x 3 ILP).
  const AppPoint a{"A", 5, 3};
  EXPECT_DOUBLE_EQ(
      delivered_performance(ArchShape::from_preset(ArchKind::kFa2), a), 6.0);
  EXPECT_DOUBLE_EQ(
      delivered_performance(ArchShape::from_preset(ArchKind::kSmt2), a), 8.0);
}

TEST(Peak, MatchesBoxArea) {
  EXPECT_DOUBLE_EQ(peak_performance(ArchShape::from_preset(ArchKind::kFa4)),
                   8.0);
  EXPECT_DOUBLE_EQ(peak_performance(ArchShape::from_preset(ArchKind::kSmt1)),
                   8.0);
}

TEST(Regions, ClassifiesPaperRegions) {
  const ArchShape fa2 = ArchShape::from_preset(ArchKind::kFa2);
  // (1): small app inside the box -> fully exploited, proc under-utilized.
  EXPECT_EQ(classify(fa2, {"", 1, 2}), Region::kAppLimited);
  // (2): app dominates the box -> processor fully utilized (optimal).
  EXPECT_EQ(classify(fa2, {"", 4, 6}), Region::kOptimal);
  // (3): many threads but no ILP -> both under-utilized.
  EXPECT_EQ(classify(fa2, {"", 8, 1}), Region::kBothUnderUtilized);
}

TEST(Regions, SmtOptimalRegionIsSuperset) {
  // Property (the model's core claim, §2): wherever an FA processor is in
  // its optimal region, the same-cluster-width SMT is optimal too.
  const std::pair<ArchKind, ArchKind> pairs[] = {
      {ArchKind::kFa4, ArchKind::kSmt4},
      {ArchKind::kFa2, ArchKind::kSmt2},
      {ArchKind::kFa1, ArchKind::kSmt1},
  };
  for (const auto& [fa_kind, smt_kind] : pairs) {
    const ArchShape fa = ArchShape::from_preset(fa_kind);
    const ArchShape smt = ArchShape::from_preset(smt_kind);
    for (double t = 0.5; t <= 8.0; t += 0.5) {
      for (double i = 0.5; i <= 8.0; i += 0.5) {
        const AppPoint app{"p", t, i};
        if (classify(fa, app) == Region::kOptimal) {
          EXPECT_EQ(classify(smt, app), Region::kOptimal)
              << fa.name << "/" << smt.name << " at (" << t << "," << i
              << ")";
        }
      }
    }
  }
}

TEST(Regions, SmtDominatesFaEverywhere) {
  // Delivered performance of SMT_c >= FA_c (matching cluster width) for
  // every app point, swept over a grid.
  for (const auto& [fa_kind, smt_kind] :
       {std::pair{ArchKind::kFa4, ArchKind::kSmt4},
        std::pair{ArchKind::kFa2, ArchKind::kSmt2},
        std::pair{ArchKind::kFa1, ArchKind::kSmt1}}) {
    const ArchShape fa = ArchShape::from_preset(fa_kind);
    const ArchShape smt = ArchShape::from_preset(smt_kind);
    for (double t = 0.25; t <= 9.0; t += 0.25) {
      for (double i = 0.25; i <= 9.0; i += 0.25) {
        const AppPoint app{"p", t, i};
        EXPECT_GE(delivered_performance(smt, app) + 1e-12,
                  delivered_performance(fa, app))
            << smt.name << " vs " << fa.name << " at (" << t << "," << i
            << ")";
      }
    }
  }
}

TEST(Regions, Smt1DominatesEveryFa) {
  for (const ArchKind fa_kind : {ArchKind::kFa8, ArchKind::kFa4,
                                 ArchKind::kFa2, ArchKind::kFa1}) {
    const ArchShape fa = ArchShape::from_preset(fa_kind);
    const ArchShape smt1 = ArchShape::from_preset(ArchKind::kSmt1);
    for (double t = 0.5; t <= 8.0; t += 0.5) {
      for (double i = 0.5; i <= 8.0; i += 0.5) {
        const AppPoint app{"p", t, i};
        EXPECT_GE(delivered_performance(smt1, app) + 1e-12,
                  delivered_performance(fa, app));
      }
    }
  }
}

TEST(Ranking, SortsByDelivered) {
  const auto rows = rank_architectures({"x", 5, 3});
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].delivered, rows[i].delivered);
  }
  // For (5,3), an adaptable SMT must rank first with the full budget.
  EXPECT_DOUBLE_EQ(rows.front().delivered, 8.0);
}

TEST(RegionNames, AreStable) {
  EXPECT_STREQ(region_name(Region::kOptimal), "optimal");
  EXPECT_STREQ(region_name(Region::kAppLimited), "app-limited");
  EXPECT_STREQ(region_name(Region::kBothUnderUtilized), "under-utilized");
}

}  // namespace
}  // namespace csmt::model
