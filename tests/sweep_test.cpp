// Tests for the sweep subsystem: grid expansion, parallel determinism
// (jobs=1 and jobs=4 must be bit-identical) and the on-disk result cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/report.hpp"
#include "sweep/sweep.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace csmt::sweep {
namespace {

namespace fs = std::filesystem;

SweepSpec small_grid() {
  SweepSpec spec;
  spec.workloads = {"swim", "tomcatv"};
  spec.archs = {core::ArchKind::kFa2, core::ArchKind::kSmt2};
  spec.chips = {1};
  spec.scales = {1};
  return spec;
}

SweepOptions quiet(unsigned jobs, std::string cache_dir = {}) {
  SweepOptions options;
  options.jobs = jobs;
  options.cache_dir = std::move(cache_dir);
  options.progress = false;
  return options;
}

/// Bit-exact RunStats comparison (doubles compared with ==, deliberately:
/// the determinism guarantee is bit-identity, not approximate equality).
void expect_identical(const sim::ExperimentResult& a,
                      const sim::ExperimentResult& b) {
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.validated, b.validated);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.committed_useful, b.stats.committed_useful);
  EXPECT_EQ(a.stats.committed_sync, b.stats.committed_sync);
  EXPECT_EQ(a.stats.fetched, b.stats.fetched);
  EXPECT_EQ(a.stats.timed_out, b.stats.timed_out);
  EXPECT_EQ(a.stats.avg_running_threads, b.stats.avg_running_threads);
  for (std::size_t i = 0; i < core::kNumSlots; ++i) {
    EXPECT_EQ(a.stats.slots.slots[i], b.stats.slots.slots[i]) << "slot " << i;
  }
  EXPECT_EQ(a.stats.predictor.cond_lookups, b.stats.predictor.cond_lookups);
  EXPECT_EQ(a.stats.predictor.cond_mispredicts,
            b.stats.predictor.cond_mispredicts);
  EXPECT_EQ(a.stats.predictor.btb_misses, b.stats.predictor.btb_misses);
  EXPECT_EQ(a.stats.mem.loads, b.stats.mem.loads);
  EXPECT_EQ(a.stats.mem.stores, b.stats.mem.stores);
  EXPECT_EQ(a.stats.mem.by_level, b.stats.mem.by_level);
  EXPECT_EQ(a.stats.mem.bank_rejections, b.stats.mem.bank_rejections);
  EXPECT_EQ(a.stats.mem.mshr_rejections, b.stats.mem.mshr_rejections);
  EXPECT_EQ(a.stats.mem.upgrades, b.stats.mem.upgrades);
  EXPECT_EQ(a.stats.mem.l1_miss_rate, b.stats.mem.l1_miss_rate);
  EXPECT_EQ(a.stats.mem.l2_miss_rate, b.stats.mem.l2_miss_rate);
  EXPECT_EQ(a.stats.mem.tlb_miss_rate, b.stats.mem.tlb_miss_rate);
  EXPECT_EQ(a.stats.dash.has_value(), b.stats.dash.has_value());
}

/// Unique scratch dir per test invocation (pid-based; tests run in their
/// own binary so this does not collide under parallel ctest).
fs::path scratch_dir(const std::string& name) {
  return fs::temp_directory_path() /
         ("csmt_" + name + "_" + std::to_string(::getpid()));
}

TEST(SweepSpec, ExpandsWorkloadMajor) {
  SweepSpec spec = small_grid();
  spec.chips = {1, 4};
  spec.fetch_policy = core::FetchPolicy::kIcount;
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u * 2u * 2u);
  // Workload-major, then arch, then chips.
  EXPECT_EQ(points[0].workload, "swim");
  EXPECT_EQ(points[0].arch, core::ArchKind::kFa2);
  EXPECT_EQ(points[0].chips, 1u);
  EXPECT_EQ(points[1].chips, 4u);
  EXPECT_EQ(points[2].arch, core::ArchKind::kSmt2);
  EXPECT_EQ(points[4].workload, "tomcatv");
  for (const auto& p : points) {
    EXPECT_EQ(p.fetch_policy, core::FetchPolicy::kIcount);
    EXPECT_EQ(p.scale, 1u);
  }
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  SweepRunner serial(quiet(1));
  SweepRunner parallel(quiet(4));
  const auto a = serial.run(small_grid());
  const auto b = parallel.run(small_grid());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(serial.counters().executed, 4u);
  EXPECT_EQ(parallel.counters().executed, 4u);
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
  // Sanity: the simulation actually ran and validated.
  for (const auto& r : a) {
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_TRUE(r.validated);
  }
}

TEST(SweepRunner, CacheHitSkipsSimulation) {
  const fs::path dir = scratch_dir("sweep_cache");
  fs::remove_all(dir);

  SweepRunner first(quiet(2, dir.string()));
  const auto a = first.run(small_grid());
  EXPECT_EQ(first.counters().executed, 4u);
  EXPECT_EQ(first.counters().cache_hits, 0u);

  SweepRunner second(quiet(2, dir.string()));
  const auto b = second.run(small_grid());
  EXPECT_EQ(second.counters().executed, 0u);
  EXPECT_EQ(second.counters().cache_hits, 4u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);

  fs::remove_all(dir);
}

TEST(SweepRunner, CachedResultIsReturnedWithoutRerun) {
  // Tamper with a cached entry; the runner must hand back the tampered
  // value — direct proof the simulation was not re-run.
  const fs::path dir = scratch_dir("sweep_tamper");
  fs::remove_all(dir);

  SweepSpec grid = small_grid();
  grid.workloads = {"swim"};
  grid.archs = {core::ArchKind::kSmt2};
  SweepRunner first(quiet(1, dir.string()));
  const auto a = first.run(grid);
  ASSERT_EQ(a.size(), 1u);

  const fs::path entry = dir / cache_entry_name(a[0].spec);
  ASSERT_TRUE(fs::exists(entry));
  std::ostringstream text;
  {
    std::ifstream in(entry);
    text << in.rdbuf();
  }
  auto doc = json::Value::parse(text.str());
  ASSERT_TRUE(doc.has_value());
  const std::uint64_t tampered = a[0].stats.cycles + 777;
  (*doc)["stats"]["cycles"] = tampered;
  {
    std::ofstream out(entry, std::ios::trunc);
    out << doc->dump(2);
  }

  SweepRunner second(quiet(1, dir.string()));
  const auto b = second.run(grid);
  EXPECT_EQ(second.counters().cache_hits, 1u);
  EXPECT_EQ(second.counters().executed, 0u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].stats.cycles, tampered);

  fs::remove_all(dir);
}

TEST(SweepRunner, CorruptCacheEntryFallsBackToSimulation) {
  const fs::path dir = scratch_dir("sweep_corrupt");
  fs::remove_all(dir);

  SweepSpec grid = small_grid();
  grid.workloads = {"swim"};
  grid.archs = {core::ArchKind::kFa2};
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 1u);

  fs::create_directories(dir);
  {
    std::ofstream out(dir / cache_entry_name(points[0]));
    out << "{ not json";
  }
  SweepRunner runner(quiet(1, dir.string()));
  const auto results = runner.run(grid);
  EXPECT_EQ(runner.counters().executed, 1u);
  EXPECT_EQ(runner.counters().cache_hits, 0u);
  EXPECT_GT(results[0].stats.cycles, 0u);

  fs::remove_all(dir);
}

TEST(SweepHash, DistinguishesEveryAxis) {
  sim::ExperimentSpec base;
  base.workload = "swim";
  base.arch = core::ArchKind::kSmt2;
  base.chips = 1;
  base.scale = 1;

  auto hash_of = [](sim::ExperimentSpec s) { return spec_hash(s); };
  const std::uint64_t h = hash_of(base);

  sim::ExperimentSpec w = base;
  w.workload = "ocean";
  sim::ExperimentSpec a = base;
  a.arch = core::ArchKind::kFa2;
  sim::ExperimentSpec c = base;
  c.chips = 4;
  sim::ExperimentSpec s = base;
  s.scale = 2;
  sim::ExperimentSpec f = base;
  f.fetch_policy = core::FetchPolicy::kIcount;
  sim::ExperimentSpec ws = base;
  ws.window_size = 32;
  sim::ExperimentSpec l1 = base;
  l1.l1_private = true;
  for (const auto& other : {w, a, c, s, f, ws, l1}) {
    EXPECT_NE(spec_hash(other), h);
  }
  // And the hash is stable for equal specs.
  EXPECT_EQ(hash_of(base), h);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(SweepCache, ConcurrentProcessPublishersNeverTearAnEntry) {
  // Regression for the multi-process cache hazard: two processes racing
  // cache_publish on the SAME entry used to share one tmp file name, so
  // their writes interleaved and a torn entry could be renamed into place.
  // With pid-unique tmp names each process renames its own complete file;
  // a reader must only ever observe a miss or a complete, parseable entry.
  const fs::path dir = scratch_dir("sweep_race");
  fs::remove_all(dir);
  fs::create_directories(dir);

  sim::ExperimentSpec spec;
  spec.workload = "swim";
  spec.arch = core::ArchKind::kFa2;
  spec.chips = 1;
  spec.scale = 1;
  const sim::ExperimentResult result = sim::run_experiment(spec);

  // Forked (not spawned) children are safe here: this test binary runs no
  // background threads, and the children only publish and _exit.
  constexpr int kRounds = 200;
  std::vector<pid_t> children;
  for (int c = 0; c < 2; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      for (int i = 0; i < kRounds; ++i) cache_publish(dir.string(), result);
      ::_exit(0);
    }
    children.push_back(pid);
  }

  // While they race, hammer the reader side: every observation of the
  // entry file must parse and decode — never a torn interleaving.
  const fs::path entry = dir / cache_entry_name(spec);
  std::size_t live = children.size();
  std::size_t reads = 0;
  while (live > 0) {
    for (auto it = children.begin(); it != children.end();) {
      int status = 0;
      if (::waitpid(*it, &status, WNOHANG) == *it) {
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
        it = children.erase(it);
        --live;
      } else {
        ++it;
      }
    }
    std::ifstream in(entry, std::ios::binary);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    if (text.str().empty()) continue;
    ++reads;
    const auto doc = json::Value::parse(text.str());
    ASSERT_TRUE(doc) << "torn cache entry observed mid-race";
    ASSERT_TRUE(sim::result_from_json(*doc));
  }
  EXPECT_GT(reads, 0u);

  // Settled state: the entry probes clean and no tmp litter survives.
  const auto probed = cache_probe(dir.string(), spec);
  ASSERT_TRUE(probed);
  expect_identical(*probed, result);
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), ".json")
        << "leftover tmp file: " << e.path();
  }
  fs::remove_all(dir);
}
#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace csmt::sweep
