// Tests for csmt::svc (DESIGN.md §15): the wire protocol round-trips, the
// JobTable lease state machine (expiry, requeue-at-front, dedupe, late
// uploads), and two end-to-end gates against a live coordinator —
//
//   * a 2-worker distributed sweep whose results JSON is byte-identical
//     (modulo host-time fields) to a local SweepRunner run, with a
//     resubmission answered entirely from cache; and
//   * a real `csmt-svc work` child process SIGKILLed mid-point, whose
//     lease expires and is requeued, and whose replacement worker resumes
//     from the parked checkpoint to the same byte-identical results.
//
// Worker processes are posix_spawn'd from CSMT_SVC_BIN (never fork: this
// binary runs server threads).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "sim/report.hpp"
#include "svc/coordinator.hpp"
#include "svc/job_table.hpp"
#include "svc/wire.hpp"
#include "svc/worker.hpp"
#include "sweep/sweep.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>
extern char** environ;
#define CSMT_SVC_HAVE_SPAWN 1
#endif

namespace csmt::svc {
namespace {

namespace fs = std::filesystem;

sim::ExperimentSpec make_spec(const std::string& workload, unsigned scale,
                              core::ArchKind arch = core::ArchKind::kSmt2) {
  sim::ExperimentSpec spec;
  spec.workload = workload;
  spec.arch = arch;
  spec.scale = scale;
  return spec;
}

/// A fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("svc-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// to_json with the host-time fields (sim_speed, resumed_from_cycle)
/// removed — the identity the CI smoke compares on.
json::Value stripped_json(const sim::ExperimentResult& r) {
  const json::Value full = sim::to_json(r);
  json::Value out = json::Value::object();
  for (const auto& [key, value] : full.members()) {
    if (key == "sim_speed" || key == "resumed_from_cycle") continue;
    out[key] = value;
  }
  return out;
}

std::string fingerprint(const std::vector<sim::ExperimentResult>& results) {
  std::string out;
  for (const sim::ExperimentResult& r : results)
    out += stripped_json(r).dump(2) + "\n";
  return out;
}

// --- wire protocol ---

TEST(SvcWire, SubmitRoundTripPreservesSpecs) {
  SubmitRequest req;
  req.points = {make_spec("swim", 2), make_spec("tomcatv", 3,
                                                core::ArchKind::kFa4)};
  req.points[1].metrics_interval = 256;
  const auto decoded = SubmitRequest::from_json(req.to_json());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->points.size(), 2u);
  EXPECT_TRUE(decoded->points[0] == req.points[0]);
  EXPECT_TRUE(decoded->points[1] == req.points[1]);
}

TEST(SvcWire, MalformedBodiesDecodeToNullopt) {
  EXPECT_FALSE(SubmitRequest::from_json(*json::Value::parse("{}")));
  EXPECT_FALSE(SubmitRequest::from_json(
      *json::Value::parse(R"({"points": [{"workload": "swim"}]})")));
  EXPECT_FALSE(LeaseRequest::from_json(
      *json::Value::parse(R"({"worker": ""})")));
  EXPECT_FALSE(HeartbeatRequest::from_json(*json::Value::parse("{}")));
  EXPECT_FALSE(ResultUpload::from_json(
      *json::Value::parse(R"({"worker": "w", "lease": 1})")));
}

TEST(SvcWire, LeaseResponseCarriesCheckpointParking) {
  LeaseResponse resp;
  Lease l;
  l.lease = 7;
  l.spec = make_spec("swim", 2);
  l.ckpt_path = "/tmp/cache/ckpt/csmt-00ff.ckpt";
  l.ckpt_interval = 5000;
  l.ckpt_tag = 0xff;
  resp.leases.push_back(l);
  resp.heartbeat_ms = 123;
  resp.shutdown = true;
  const auto decoded = LeaseResponse::from_json(resp.to_json());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->leases.size(), 1u);
  EXPECT_EQ(decoded->leases[0].lease, 7u);
  EXPECT_EQ(decoded->leases[0].ckpt_path, l.ckpt_path);
  EXPECT_EQ(decoded->leases[0].ckpt_interval, 5000u);
  EXPECT_EQ(decoded->leases[0].ckpt_tag, 0xffu);
  EXPECT_EQ(decoded->heartbeat_ms, 123u);
  EXPECT_TRUE(decoded->shutdown);
}

// --- JobTable: the lease state machine ---

std::vector<std::optional<sim::ExperimentResult>> no_cache(std::size_t n) {
  return std::vector<std::optional<sim::ExperimentResult>>(n);
}

TEST(SvcJobTable, FifoLeasingAndCompletion) {
  JobTable table;
  const std::vector<sim::ExperimentSpec> points = {make_spec("swim", 2),
                                                   make_spec("tomcatv", 2)};
  const auto sub = table.submit(points, no_cache(2));
  EXPECT_EQ(sub.total, 2u);
  EXPECT_FALSE(sub.complete);
  EXPECT_EQ(table.queued(), 2u);

  const auto grants = table.lease("w0", 8, /*now_ms=*/0, /*ttl_ms=*/1000);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_TRUE(grants[0].spec == points[0]);  // FIFO: submission order
  EXPECT_EQ(grants[0].attempt, 1u);
  EXPECT_EQ(table.queued(), 0u);
  EXPECT_EQ(table.leased(), 2u);

  sim::ExperimentResult r0;
  r0.spec = points[0];
  EXPECT_EQ(table.complete(grants[0].lease, r0),
            JobTable::UploadOutcome::kAccepted);
  EXPECT_EQ(table.status(sub.job).done, 1u);
  EXPECT_FALSE(table.status(sub.job).complete);

  sim::ExperimentResult r1;
  r1.spec = points[1];
  EXPECT_EQ(table.complete(grants[1].lease, r1),
            JobTable::UploadOutcome::kAccepted);
  const auto status = table.status(sub.job);
  EXPECT_TRUE(status.complete);
  ASSERT_EQ(status.results.size(), 2u);
  EXPECT_TRUE(status.results[0]->spec == points[0]);
  EXPECT_TRUE(table.all_done());
}

TEST(SvcJobTable, ExpiredLeaseRequeuesAtFront) {
  JobTable table;
  const std::vector<sim::ExperimentSpec> points = {make_spec("swim", 2),
                                                   make_spec("tomcatv", 2)};
  table.submit(points, no_cache(2));

  // w0 takes the first point; its heartbeats then stop.
  const auto first = table.lease("w0", 1, 0, 1000);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(table.expire(/*now_ms=*/500), 0u);   // not yet due
  EXPECT_EQ(table.expire(/*now_ms=*/1001), 1u);  // dead: requeued
  EXPECT_EQ(table.stats().requeued, 1u);
  EXPECT_EQ(table.stats().leases_expired, 1u);
  EXPECT_EQ(table.queued(), 2u);

  // The requeued point jumps the queue: its parked checkpoint makes it the
  // cheapest work, so the next pull must get it first, as attempt 2.
  const auto second = table.lease("w1", 1, 1001, 1000);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].spec == points[0]);
  EXPECT_EQ(second[0].attempt, 2u);
  EXPECT_NE(second[0].lease, first[0].lease);  // lease ids never reused

  // The dead worker's heartbeat (it was only paused) reports the loss.
  const auto lost = table.heartbeat("w0", {first[0].lease}, 1002, 1000);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], first[0].lease);
}

TEST(SvcJobTable, HeartbeatRenewalPreventsExpiry) {
  JobTable table;
  table.submit({make_spec("swim", 2)}, no_cache(1));
  const auto grants = table.lease("w0", 1, 0, 1000);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(table.heartbeat("w0", {grants[0].lease}, 900, 1000).empty());
  EXPECT_EQ(table.expire(1500), 0u);  // renewed to 1900
  EXPECT_EQ(table.expire(2000), 1u);  // renewal lapsed
}

TEST(SvcJobTable, LateUploadForRequeuedPointIsAccepted) {
  JobTable table;
  const auto spec = make_spec("swim", 2);
  table.submit({spec}, no_cache(1));
  const auto first = table.lease("w0", 1, 0, 1000);
  ASSERT_EQ(first.size(), 1u);
  table.expire(2000);  // w0 presumed dead, point requeued

  // w0 was only slow: its upload lands while the point sits in the queue.
  sim::ExperimentResult r;
  r.spec = spec;
  EXPECT_EQ(table.complete(first[0].lease, r),
            JobTable::UploadOutcome::kAccepted);
  EXPECT_TRUE(table.all_done());
  // The stale queue entry must not be re-granted.
  EXPECT_TRUE(table.lease("w1", 8, 2001, 1000).empty());

  // A duplicate upload is stale, an unknown lease id is rejected.
  EXPECT_EQ(table.complete(first[0].lease, r),
            JobTable::UploadOutcome::kStale);
  EXPECT_EQ(table.complete(999, r), JobTable::UploadOutcome::kUnknown);
}

TEST(SvcJobTable, IdenticalSpecsDedupeAcrossJobs) {
  JobTable table;
  const auto spec = make_spec("swim", 2);

  // Job 1 submits the point; job 2 submits the identical spec while it is
  // still in flight — it must attach, not enqueue a second execution.
  const auto job1 = table.submit({spec}, no_cache(1));
  const auto job2 = table.submit({spec}, no_cache(1));
  EXPECT_EQ(job2.deduped, 1u);
  EXPECT_EQ(table.queued(), 1u);

  const auto grants = table.lease("w0", 8, 0, 1000);
  ASSERT_EQ(grants.size(), 1u);
  sim::ExperimentResult r;
  r.spec = spec;
  table.complete(grants[0].lease, r);

  // One execution completed both jobs.
  EXPECT_TRUE(table.status(job1.job).complete);
  EXPECT_TRUE(table.status(job2.job).complete);
  EXPECT_EQ(table.stats().executed, 1u);

  // A third submission after completion is a cache hit, not a dedupe.
  const auto job3 = table.submit({spec}, no_cache(1));
  EXPECT_EQ(job3.cached, 1u);
  EXPECT_TRUE(job3.complete);
}

TEST(SvcJobTable, CacheProbedPointsAreBornDone) {
  JobTable table;
  const auto spec = make_spec("swim", 2);
  sim::ExperimentResult cached;
  cached.spec = spec;
  const auto sub = table.submit({spec}, {cached});
  EXPECT_TRUE(sub.complete);
  EXPECT_EQ(sub.cached, 1u);
  EXPECT_EQ(table.queued(), 0u);
  EXPECT_EQ(table.stats().cache_hits, 1u);
  EXPECT_EQ(table.stats().executed, 0u);
}

// --- end to end: coordinator + workers over HTTP ---

/// POSTs `body` to the coordinator and decodes the response with `Decode`.
template <typename Decode>
auto post(const Coordinator& coord, const std::string& path,
          const json::Value& body, Decode decode) {
  const auto res = net::http_request("127.0.0.1", coord.port(), "POST", path,
                                     body.dump());
  EXPECT_TRUE(res && res->status == 200) << path;
  using Out = decltype(decode(json::Value()));
  if (!res || res->status != 200) return Out{};
  const auto doc = json::Value::parse(res->body);
  EXPECT_TRUE(doc) << path;
  if (!doc) return Out{};
  return decode(*doc);
}

std::optional<JobStatus> poll_job(const Coordinator& coord, std::uint64_t job,
                                  int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto res = net::http_request(
        "127.0.0.1", coord.port(), "GET", "/job?id=" + std::to_string(job));
    if (res && res->status == 200) {
      const auto doc = json::Value::parse(res->body);
      const auto status = doc ? JobStatus::from_json(*doc) : std::nullopt;
      if (status && status->complete) return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return std::nullopt;
}

TEST(SvcEndToEnd, TwoWorkerSweepMatchesLocalRunnerAndResubmitHitsCache) {
  const std::string cache_dir = fresh_dir("e2e");

  sweep::SweepSpec grid;
  grid.workloads = {"swim", "tomcatv"};
  grid.archs = {core::ArchKind::kSmt2, core::ArchKind::kFa4};
  grid.scales = {2};
  const std::vector<sim::ExperimentSpec> points = grid.expand();

  // Local reference: a plain uncached SweepRunner over the same grid.
  sweep::SweepOptions local_opt;
  local_opt.progress = false;
  local_opt.serve_telemetry = -1;
  sweep::SweepRunner local(local_opt);
  const auto reference = local.run(points);

  CoordinatorOptions copt;
  copt.cache_dir = cache_dir;
  Coordinator coord(copt);
  ASSERT_TRUE(coord.start());

  // Two in-process workers pulling from the coordinator.
  auto worker_opts = [&](const char* name) {
    WorkerOptions w;
    w.port = coord.port();
    w.name = name;
    w.sweep.cache_dir = cache_dir;
    w.sweep.progress = false;
    return w;
  };
  Worker w0(worker_opts("w0")), w1(worker_opts("w1"));
  std::thread t0([&] { w0.run(); }), t1([&] { w1.run(); });

  SubmitRequest req;
  req.points = points;
  const auto sub = post(coord, "/submit", req.to_json(),
                        [](const json::Value& v) {
                          return SubmitResponse::from_json(v);
                        });
  ASSERT_TRUE(sub);
  EXPECT_EQ(sub->total, points.size());
  EXPECT_EQ(sub->cached, 0u);

  const auto status = poll_job(coord, sub->job, /*timeout_ms=*/60'000);
  ASSERT_TRUE(status) << "distributed sweep did not complete";
  ASSERT_EQ(status->results.size(), reference.size());
  EXPECT_EQ(fingerprint(status->results), fingerprint(reference));

  // Identical resubmission: every point is already done — no new work.
  const auto resub = post(coord, "/submit", req.to_json(),
                          [](const json::Value& v) {
                            return SubmitResponse::from_json(v);
                          });
  ASSERT_TRUE(resub);
  EXPECT_TRUE(resub->complete);
  EXPECT_EQ(resub->cached, points.size());
  EXPECT_EQ(coord.table().stats().executed, points.size());

  coord.request_shutdown();
  t0.join();
  t1.join();
  coord.stop();

  // A *fresh* coordinator on the same cache dir answers the grid entirely
  // from disk: N cache hits, zero executions, complete at submit.
  Coordinator coord2(copt);
  ASSERT_TRUE(coord2.start());
  const auto cold = post(coord2, "/submit", req.to_json(),
                         [](const json::Value& v) {
                           return SubmitResponse::from_json(v);
                         });
  ASSERT_TRUE(cold);
  EXPECT_TRUE(cold->complete);
  EXPECT_EQ(cold->cached, points.size());
  EXPECT_EQ(coord2.table().stats().cache_hits, points.size());
  EXPECT_EQ(coord2.table().stats().executed, 0u);
  const auto cold_status = poll_job(coord2, cold->job, 5'000);
  ASSERT_TRUE(cold_status);
  EXPECT_EQ(fingerprint(cold_status->results), fingerprint(reference));
  coord2.stop();
}

#if CSMT_SVC_HAVE_SPAWN

/// Spawns `csmt-svc work --coordinator 127.0.0.1:<port>` and returns its
/// pid (-1 on failure). The worker shares `cache_dir` with the coordinator.
pid_t spawn_worker(std::uint16_t port, const std::string& cache_dir,
                   const std::string& name) {
  const std::string coordinator = "--coordinator=127.0.0.1:" +
                                  std::to_string(port);
  const std::string cache = "--cache-dir=" + cache_dir;
  const std::string worker_name = "--name=" + name;
  const char* argv[] = {CSMT_SVC_BIN,          "work",
                        coordinator.c_str(),   worker_name.c_str(),
                        cache.c_str(),         nullptr};
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, CSMT_SVC_BIN, nullptr, nullptr,
                               const_cast<char**>(argv), environ);
  return rc == 0 ? pid : -1;
}

TEST(SvcFaultTolerance, SigkilledWorkerIsRequeuedAndResumedFromCheckpoint) {
  const std::string cache_dir = fresh_dir("kill");

  // One long-ish point (~0.3s of host time, ~240k cycles) with frequent
  // snapshots, so the kill reliably lands mid-run well after a checkpoint
  // was parked.
  const sim::ExperimentSpec point = make_spec("swim", 6);

  // Uninterrupted local reference for the byte-identity check.
  const sim::ExperimentResult reference = sim::run_experiment(point);
  ASSERT_FALSE(reference.stats.timed_out);

  CoordinatorOptions copt;
  copt.cache_dir = cache_dir;
  copt.ckpt_interval = 10'000;  // ~24 snapshots across the run
  copt.lease_ttl_ms = 600;      // a dead worker requeues fast
  copt.reap_interval_ms = 50;
  Coordinator coord(copt);
  ASSERT_TRUE(coord.start());

  SubmitRequest req;
  req.points = {point};
  const auto sub = post(coord, "/submit", req.to_json(),
                        [](const json::Value& v) {
                          return SubmitResponse::from_json(v);
                        });
  ASSERT_TRUE(sub);
  ASSERT_EQ(sub->cached, 0u);

  const pid_t victim = spawn_worker(coord.port(), cache_dir, "victim");
  ASSERT_GT(victim, 0) << "failed to spawn " << CSMT_SVC_BIN;

  // Wait for the worker's first parked snapshot, then SIGKILL it — exactly
  // the mid-point death the lease TTL exists for.
  const std::string ckpt = sweep::ckpt_entry_path(
      cache_dir, sweep::spec_hash(point));
  const auto spawn_deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
  while (!fs::exists(ckpt)) {
    ASSERT_LT(std::chrono::steady_clock::now(), spawn_deadline)
        << "worker never parked a checkpoint";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  {
    int status = 0;
    ::waitpid(victim, &status, 0);
  }
  // The kill must have landed mid-point: the job is not complete and the
  // checkpoint (not a result) is what the worker left behind.
  EXPECT_FALSE(coord.table().all_done());
  EXPECT_TRUE(fs::exists(ckpt));

  // A replacement worker pulls the requeued lease and resumes the parked
  // snapshot to completion.
  const pid_t successor = spawn_worker(coord.port(), cache_dir, "successor");
  ASSERT_GT(successor, 0);
  const auto status = poll_job(coord, sub->job, /*timeout_ms=*/60'000);
  ASSERT_TRUE(status) << "requeued point never completed";

  const TableStats stats = coord.table().stats();
  EXPECT_GE(stats.requeued, 1u);
  EXPECT_GE(stats.leases_expired, 1u);

  // The successor resumed rather than re-ran, and the resumed results are
  // byte-identical to the uninterrupted reference (host-time fields aside).
  ASSERT_EQ(status->results.size(), 1u);
  EXPECT_GT(status->results[0].resumed_from_cycle, 0u);
  EXPECT_EQ(stripped_json(status->results[0]).dump(2),
            stripped_json(reference).dump(2));
  // The completed point's checkpoint was cleaned up.
  EXPECT_FALSE(fs::exists(ckpt));

  coord.request_shutdown();
  {
    int status_raw = 0;
    ::waitpid(successor, &status_raw, 0);
  }
  coord.stop();
}

#endif  // CSMT_SVC_HAVE_SPAWN

}  // namespace
}  // namespace csmt::svc
