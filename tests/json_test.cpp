// Tests for the JSON document model and the RunStats JSON round-trip that
// the sweep result cache and the --json artifacts depend on.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "sim/report.hpp"

namespace csmt {
namespace {

TEST(Json, ScalarsRoundTrip) {
  for (const char* text : {"null", "true", "false", "0", "-17", "3.5",
                           "\"hello\"", "[]", "{}"}) {
    const auto v = json::Value::parse(text);
    ASSERT_TRUE(v.has_value()) << text;
    EXPECT_EQ(v->dump(), text);
  }
}

TEST(Json, StringEscapes) {
  json::Value v(std::string("a\"b\\c\nd\te"));
  const std::string dumped = v.dump();
  const auto back = json::Value::parse(dumped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), "a\"b\\c\nd\te");
  // Standard \uXXXX escapes parse too.
  const auto uni = json::Value::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(uni.has_value());
  EXPECT_EQ(uni->as_string(), "A\xc3\xa9");
}

TEST(Json, NestedDocument) {
  json::Value doc = json::Value::object();
  doc["name"] = "fig7";
  doc["points"] = 24;
  json::Value arr = json::Value::array();
  arr.push_back(1.5);
  arr.push_back(json::Value(std::uint64_t{123456789}));
  doc["values"] = std::move(arr);

  const auto back = json::Value::parse(doc.dump(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("name")->as_string(), "fig7");
  EXPECT_EQ(back->find("points")->as_unsigned(), 24u);
  ASSERT_EQ(back->find("values")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(back->find("values")->items()[0].as_number(), 1.5);
  EXPECT_EQ(back->find("values")->items()[1].as_u64(), 123456789u);
}

TEST(Json, MalformedInputsRejected) {
  for (const char* text :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 trailing",
        "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(json::Value::parse(text).has_value()) << text;
  }
}

TEST(Json, NumberPrecisionSurvives) {
  const double values[] = {0.3333333333333333, 1e-12, 9.0e14, 123456.789};
  for (const double d : values) {
    const auto back = json::Value::parse(json::Value(d).dump());
    ASSERT_TRUE(back.has_value());
    EXPECT_DOUBLE_EQ(back->as_number(), d);
  }
}

/// A result with every field populated, including the optional DASH block
/// and spec overrides.
sim::ExperimentResult full_result() {
  sim::ExperimentResult r;
  r.spec.workload = "ocean";
  r.spec.arch = core::ArchKind::kSmt2;
  r.spec.chips = 4;
  r.spec.scale = 2;
  r.spec.fetch_policy = core::FetchPolicy::kIcount;
  r.spec.window_size = 32;
  r.spec.l1_private = true;

  r.stats.cycles = 123456789;
  r.stats.slots[core::Slot::kUseful] = 1000.5;
  r.stats.slots[core::Slot::kSync] = 250.25;
  r.stats.slots[core::Slot::kMemory] = 83.125;
  r.stats.slots[core::Slot::kFetch] = 10.0625;
  r.stats.committed_useful = 987654321;
  r.stats.committed_sync = 4242;
  r.stats.fetched = 1000000007;
  r.stats.timed_out = false;
  r.stats.avg_running_threads = 6.75;
  r.stats.predictor.cond_lookups = 1111;
  r.stats.predictor.cond_mispredicts = 22;
  r.stats.predictor.btb_misses = 3;
  r.stats.mem.loads = 555;
  r.stats.mem.stores = 444;
  r.stats.mem.by_level = {1, 2, 3, 4, 5, 6};
  r.stats.mem.bank_rejections = 7;
  r.stats.mem.mshr_rejections = 8;
  r.stats.mem.upgrades = 9;
  r.stats.mem.l1_cross_invalidations = 10;
  r.stats.mem.l1_miss_rate = 0.0625;
  r.stats.mem.l2_miss_rate = 0.03125;
  r.stats.mem.tlb_miss_rate = 0.015625;
  noc::DashStats dash;
  dash.fetches = 100;
  dash.remote_fetches = 60;
  dash.interventions = 5;
  dash.dirty_remote_supplies = 4;
  dash.invalidations_sent = 3;
  dash.upgrades = 2;
  dash.writebacks = 1;
  r.stats.dash = dash;
  r.validated = true;
  return r;
}

TEST(ResultJson, RoundTripPreservesEverything) {
  const sim::ExperimentResult r = full_result();
  const std::string text = sim::to_json(r).dump(2);
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto back = sim::result_from_json(*doc);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->spec, r.spec);
  EXPECT_EQ(back->stats.cycles, r.stats.cycles);
  for (std::size_t i = 0; i < core::kNumSlots; ++i) {
    EXPECT_DOUBLE_EQ(back->stats.slots.slots[i], r.stats.slots.slots[i]) << i;
  }
  // IPC and hazard shares (derived values) match exactly.
  EXPECT_DOUBLE_EQ(back->stats.useful_ipc(), r.stats.useful_ipc());
  EXPECT_DOUBLE_EQ(back->stats.slots.fraction(core::Slot::kSync),
                   r.stats.slots.fraction(core::Slot::kSync));
  EXPECT_EQ(back->stats.committed_useful, r.stats.committed_useful);
  EXPECT_EQ(back->stats.committed_sync, r.stats.committed_sync);
  EXPECT_EQ(back->stats.fetched, r.stats.fetched);
  EXPECT_EQ(back->stats.timed_out, r.stats.timed_out);
  EXPECT_DOUBLE_EQ(back->stats.avg_running_threads,
                   r.stats.avg_running_threads);
  EXPECT_EQ(back->stats.predictor.cond_lookups, r.stats.predictor.cond_lookups);
  EXPECT_EQ(back->stats.predictor.cond_mispredicts,
            r.stats.predictor.cond_mispredicts);
  EXPECT_EQ(back->stats.predictor.btb_misses, r.stats.predictor.btb_misses);
  EXPECT_EQ(back->stats.mem.loads, r.stats.mem.loads);
  EXPECT_EQ(back->stats.mem.stores, r.stats.mem.stores);
  EXPECT_EQ(back->stats.mem.by_level, r.stats.mem.by_level);
  EXPECT_EQ(back->stats.mem.l1_cross_invalidations,
            r.stats.mem.l1_cross_invalidations);
  EXPECT_DOUBLE_EQ(back->stats.mem.l1_miss_rate, r.stats.mem.l1_miss_rate);
  ASSERT_TRUE(back->stats.dash.has_value());
  EXPECT_EQ(back->stats.dash->remote_fetches, r.stats.dash->remote_fetches);
  EXPECT_EQ(back->stats.dash->writebacks, r.stats.dash->writebacks);
  EXPECT_EQ(back->validated, r.validated);
}

TEST(ResultJson, OmitsAbsentOptionals) {
  sim::ExperimentResult r = full_result();
  r.spec.fetch_policy.reset();
  r.spec.window_size.reset();
  r.spec.l1_private.reset();
  r.stats.dash.reset();
  const json::Value doc = sim::to_json(r);
  EXPECT_EQ(doc.find("spec")->find("fetch_policy"), nullptr);
  EXPECT_EQ(doc.find("spec")->find("window_size"), nullptr);
  EXPECT_EQ(doc.find("stats")->find("dash"), nullptr);

  const auto back = sim::result_from_json(doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec, r.spec);
  EXPECT_FALSE(back->stats.dash.has_value());
}

TEST(ResultJson, MissingRequiredFieldsRejected) {
  json::Value doc = sim::to_json(full_result());
  // No "spec" member at all.
  json::Value broken = json::Value::object();
  broken["stats"] = *doc.find("stats");
  broken["validated"] = true;
  EXPECT_FALSE(sim::result_from_json(broken).has_value());

  // An architecture name that arch_from_name() does not know.
  json::Value bad_arch = doc;
  bad_arch["spec"]["arch"] = "FA99";
  EXPECT_FALSE(sim::result_from_json(bad_arch).has_value());
}

TEST(ResultJson, RenderJsonIsParsableDocument) {
  const std::vector<sim::ExperimentResult> results = {full_result(),
                                                      full_result()};
  const auto doc = json::Value::parse(sim::render_json(results));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "csmt-sweep-results");
  ASSERT_NE(doc->find("results"), nullptr);
  ASSERT_EQ(doc->find("results")->items().size(), 2u);
  const auto back = sim::result_from_json(doc->find("results")->items()[0]);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->stats.cycles, results[0].stats.cycles);
}

}  // namespace
}  // namespace csmt
