// Unit tests for csmt::obs: Chrome trace writer output stability, the
// epoch sampler, phase profiling, sparklines, the null-sink fast path
// (tracing off must not perturb RunStats), and the JSON round trip of the
// new observability fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "isa/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"

namespace csmt {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// --- ChromeTraceWriter ---------------------------------------------------

TEST(ChromeTraceWriter, GoldenOutputIsStable) {
  // The writer's byte-level format is a compatibility surface: Perfetto and
  // chrome://tracing parse it, and this golden string pins it down.
  const std::string path = temp_path("csmt_obs_golden_trace.json");
  {
    obs::ChromeTraceWriter w(path);
    ASSERT_TRUE(w.ok());
    w.name_process(obs::kChipPidBase, "chip 0");
    w.name_track({obs::kChipPidBase, 0}, "cluster 0 pipeline");
    w.instant({obs::kChipPidBase, 0}, "fetch", 5, 3);
    w.complete({obs::kChipPidBase, obs::kThreadTidBase}, "run", 0, 10);
    w.counter({0, 0}, "running_threads", 7, 8);
    w.finish();
    EXPECT_EQ(w.events_written(), 5u);
  }
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"chip 0\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cluster 0 pipeline\"}},\n"
      "{\"name\":\"fetch\",\"ph\":\"i\",\"s\":\"t\",\"ts\":5,\"pid\":1,"
      "\"tid\":0,\"args\":{\"n\":3}},\n"
      "{\"name\":\"run\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,"
      "\"tid\":100},\n"
      "{\"name\":\"running_threads\",\"ph\":\"C\",\"ts\":7,\"pid\":0,"
      "\"tid\":0,\"args\":{\"value\":8}}\n"
      "]}\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

TEST(ChromeTraceWriter, OutputParsesAsJson) {
  const std::string path = temp_path("csmt_obs_parse_trace.json");
  {
    obs::ChromeTraceWriter w(path);
    w.name_track({obs::kSyncPid, 100}, "thread \"0\"\n");  // needs escaping
    w.instant({obs::kSyncPid, 100}, "barrier_enter", 42);
  }  // destructor finishes the document
  const auto doc = json::Value::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->items().size(), 2u);
  std::remove(path.c_str());
}

TEST(ChromeTraceWriter, FinishIsIdempotentAndDropsLateEvents) {
  const std::string path = temp_path("csmt_obs_finish_trace.json");
  obs::ChromeTraceWriter w(path);
  w.instant({1, 0}, "a", 1);
  w.finish();
  w.finish();
  w.instant({1, 0}, "late", 2);  // dropped, file already closed
  EXPECT_EQ(w.events_written(), 1u);
  EXPECT_TRUE(json::Value::parse(slurp(path)).has_value());
  std::remove(path.c_str());
}

TEST(ChromeTraceWriter, UnopenableFileIsNotOk) {
  obs::ChromeTraceWriter w("/nonexistent-dir-xyz/trace.json");
  EXPECT_FALSE(w.ok());
  w.instant({1, 0}, "a", 1);  // must not crash
  EXPECT_EQ(w.events_written(), 0u);
}

// --- EpochSampler --------------------------------------------------------

TEST(EpochSampler, ZeroIntervalIsDisabled) {
  obs::EpochSampler s(0);
  EXPECT_FALSE(s.enabled());
  EXPECT_FALSE(s.due(1'000'000));
  s.finish(1'000'000, {});
  EXPECT_TRUE(s.samples().empty());
}

TEST(EpochSampler, ClosesOnBoundariesAndPartialTail) {
  obs::EpochSampler s(10);
  obs::EpochCounters cum;
  // 25 cycles: 3 useful commits and 2 running threads per cycle, the way
  // the machine loop drives the sampler.
  for (Cycle cyc = 1; cyc <= 25; ++cyc) {
    cum.committed_useful += 3;
    s.note_running(2);
    if (s.due(cyc)) s.close(cyc, cum);
  }
  s.finish(25, cum);
  ASSERT_EQ(s.samples().size(), 3u);
  const auto& e0 = s.samples()[0];
  const auto& e2 = s.samples()[2];
  EXPECT_EQ(e0.begin, 0u);
  EXPECT_EQ(e0.end, 10u);
  EXPECT_EQ(e0.counters.committed_useful, 30u);
  EXPECT_DOUBLE_EQ(e0.avg_running_threads, 2.0);
  EXPECT_DOUBLE_EQ(e0.useful_ipc(), 3.0);
  EXPECT_EQ(e2.begin, 20u);
  EXPECT_EQ(e2.end, 25u);  // partial tail
  EXPECT_EQ(e2.length(), 5u);
  EXPECT_EQ(e2.counters.committed_useful, 15u);
}

TEST(EpochSampler, FinishOnExactBoundaryAddsNothing) {
  obs::EpochSampler s(10);
  obs::EpochCounters cum;
  for (Cycle cyc = 1; cyc <= 20; ++cyc) {
    cum.fetched += 1;
    s.note_running(1);
    if (s.due(cyc)) s.close(cyc, cum);
  }
  s.finish(20, cum);  // epoch already closed at 20 — no empty tail
  EXPECT_EQ(s.samples().size(), 2u);
}

TEST(EpochCounters, MergeAndMinus) {
  obs::EpochCounters a, b;
  a.committed_useful = 10;
  a.l2_misses = 4;
  a.slots[core::Slot::kUseful] = 1.5;
  b.committed_useful = 7;
  b.l2_misses = 1;
  b.slots[core::Slot::kUseful] = 0.5;
  obs::EpochCounters m = a;
  m.merge(b);  // per-chip counters -> machine-wide snapshot
  EXPECT_EQ(m.committed_useful, 17u);
  EXPECT_EQ(m.l2_misses, 5u);
  EXPECT_DOUBLE_EQ(m.slots[core::Slot::kUseful], 2.0);
  const obs::EpochCounters d = m.minus(b);  // snapshot delta
  EXPECT_EQ(d.committed_useful, 10u);
  EXPECT_EQ(d.l2_misses, 4u);
  EXPECT_DOUBLE_EQ(d.slots[core::Slot::kUseful], 1.5);
}

// --- Sparklines ----------------------------------------------------------

TEST(Sparkline, ScalesToSeriesRange) {
  const std::string s = obs::sparkline({0.0, 1.0, 2.0, 3.0});
  // 4 glyphs, 3 bytes each (UTF-8 block characters).
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s.substr(0, 3), "▁");  // the min
  EXPECT_EQ(s.substr(9, 3), "█");  // the max
}

TEST(Sparkline, FlatSeriesIsMidRow) {
  const std::string s = obs::sparkline({5.0, 5.0, 5.0});
  EXPECT_EQ(s, "▅▅▅");
}

TEST(Sparkline, EmptySeriesIsEmpty) {
  EXPECT_EQ(obs::sparkline({}), "");
}

// --- PhaseProfiler -------------------------------------------------------

TEST(PhaseProfiler, SelfTimeAttribution) {
  obs::PhaseProfiler prof;
  volatile std::uint64_t sink = 0;
  {
    obs::ScopedPhase issue(&prof, obs::Phase::kIssue);
    for (int i = 0; i < 50'000; ++i) sink += i;
    {
      obs::ScopedPhase mem(&prof, obs::Phase::kMemory);
      for (int i = 0; i < 50'000; ++i) sink += i;
    }
  }
  double total = 0;
  for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
    const double sec = prof.seconds(static_cast<obs::Phase>(p));
    EXPECT_GE(sec, 0.0);
    total += sec;
  }
  EXPECT_GT(total, 0.0);
  // Self-time: the nested memory scope's time must not also be charged to
  // issue, so both buckets are populated independently.
  EXPECT_GT(prof.seconds(obs::Phase::kIssue), 0.0);
  EXPECT_GT(prof.seconds(obs::Phase::kMemory), 0.0);
}

TEST(PhaseProfiler, NullScopeIsNoop) {
  obs::ScopedPhase scope(nullptr, obs::Phase::kNoc);  // must not crash
  obs::SimSpeed speed;
  EXPECT_FALSE(speed.measured);
  EXPECT_EQ(speed.summary(), "unmeasured");
  EXPECT_DOUBLE_EQ(speed.cycles_per_sec(), 0.0);
}

// --- Whole-machine tracing ----------------------------------------------

isa::Program busy_program(unsigned iters) {
  isa::ProgramBuilder b("busy");
  isa::Reg r = b.ireg(), i = b.ireg(), n = b.ireg();
  b.li(r, 1);
  b.li(n, iters);
  b.for_range(i, 0, n, 1, [&] { b.add(r, r, r); });
  b.halt();
  return b.take();
}

sim::RunStats run_busy(obs::TraceSink* trace, Cycle metrics_interval) {
  sim::MachineConfig mc;
  mc.arch = core::arch_preset(core::ArchKind::kSmt2);
  mc.trace = trace;
  mc.metrics_interval = metrics_interval;
  sim::Machine m(mc);
  mem::PagedMemory memory;
  return m
      .run(sim::Mix::single(busy_program(150), memory, 0,
                            mc.total_threads()))
      .combined;
}

TEST(MachineTrace, ProducesLoadableTracksAndIdenticalStats) {
  const std::string path = temp_path("csmt_obs_machine_trace.json");
  sim::RunStats traced;
  {
    obs::ChromeTraceWriter w(path);
    ASSERT_TRUE(w.ok());
    traced = run_busy(&w, 0);
    w.finish();
    EXPECT_GT(w.events_written(), 0u);
  }
  const std::string text = slurp(path);
  ASSERT_TRUE(json::Value::parse(text).has_value());
  // The advertised track layout: per-chip process, per-cluster pipeline
  // tracks, per-thread state tracks, a memsys track, sync + machine rows.
  EXPECT_NE(text.find("\"chip 0\""), std::string::npos);
  EXPECT_NE(text.find("\"cluster 0 pipeline\""), std::string::npos);
  EXPECT_NE(text.find("\"cluster 1 pipeline\""), std::string::npos);
  EXPECT_NE(text.find("\"thread 0\""), std::string::npos);
  EXPECT_NE(text.find("\"thread 7\""), std::string::npos);
  EXPECT_NE(text.find("\"memsys\""), std::string::npos);
  EXPECT_NE(text.find("\"running_threads\""), std::string::npos);
  std::remove(path.c_str());

  // Null-sink fast path: turning tracing off must leave every architectural
  // counter bit-identical.
  const sim::RunStats base = run_busy(nullptr, 0);
  EXPECT_EQ(base.cycles, traced.cycles);
  EXPECT_EQ(base.committed_useful, traced.committed_useful);
  EXPECT_EQ(base.committed_sync, traced.committed_sync);
  EXPECT_EQ(base.fetched, traced.fetched);
  EXPECT_EQ(base.timed_out, traced.timed_out);
  EXPECT_DOUBLE_EQ(base.avg_running_threads, traced.avg_running_threads);
  for (std::size_t i = 0; i < core::kNumSlots; ++i)
    EXPECT_DOUBLE_EQ(base.slots.slots[i], traced.slots.slots[i]);
  EXPECT_EQ(base.mem.loads, traced.mem.loads);
  EXPECT_EQ(base.mem.stores, traced.mem.stores);
  EXPECT_EQ(base.mem.bank_rejections, traced.mem.bank_rejections);
  EXPECT_EQ(base.mem.mshr_rejections, traced.mem.mshr_rejections);
  EXPECT_DOUBLE_EQ(base.mem.l1_miss_rate, traced.mem.l1_miss_rate);
  EXPECT_DOUBLE_EQ(base.mem.l2_miss_rate, traced.mem.l2_miss_rate);
}

TEST(MachineTrace, EpochSeriesCoversTheRunAndIsDeterministic) {
  const sim::RunStats a = run_busy(nullptr, 200);
  ASSERT_FALSE(a.epochs.empty());
  // Contiguous coverage [0, cycles) in interval-sized steps.
  Cycle expect_begin = 0;
  for (const obs::EpochSample& e : a.epochs) {
    EXPECT_EQ(e.begin, expect_begin);
    EXPECT_GT(e.end, e.begin);
    EXPECT_LE(e.length(), 200u);
    expect_begin = e.end;
  }
  EXPECT_EQ(a.epochs.back().end, a.cycles);
  // Epoch totals must sum to the run totals (pure counter differencing).
  std::uint64_t useful = 0;
  for (const obs::EpochSample& e : a.epochs)
    useful += e.counters.committed_useful;
  EXPECT_EQ(useful, a.committed_useful);
  // And the sampler itself must not perturb the run.
  const sim::RunStats b = run_busy(nullptr, 0);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.committed_useful, b.committed_useful);
}

// --- JSON round trip -----------------------------------------------------

TEST(ObsJson, EpochsAndSimSpeedRoundTrip) {
  sim::ExperimentResult r;
  r.spec.workload = "ocean";
  r.spec.arch = core::ArchKind::kSmt2;
  r.spec.metrics_interval = 500;
  r.stats.cycles = 1000;
  r.stats.committed_useful = 4000;
  r.validated = true;
  for (int i = 0; i < 2; ++i) {
    obs::EpochSample e;
    e.begin = i * 500;
    e.end = e.begin + 500;
    e.avg_running_threads = 6.25 + i;
    e.counters.committed_useful = 2000u + i;
    e.counters.l2_misses = 11u * (i + 1);
    e.counters.slots[core::Slot::kUseful] = 1234.5 + i;
    r.stats.epochs.push_back(e);
  }
  r.sim_speed.measured = true;
  r.sim_speed.wall_seconds = 0.25;
  r.sim_speed.sim_cycles = 1000;
  r.sim_speed.committed = 4100;
  r.sim_speed.phases_measured = true;
  r.sim_speed.phase_seconds[static_cast<std::size_t>(obs::Phase::kMemory)] =
      0.125;

  const auto back = sim::result_from_json(sim::to_json(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->spec == r.spec);
  EXPECT_EQ(back->spec.metrics_interval, 500u);
  ASSERT_EQ(back->stats.epochs.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    const obs::EpochSample& e = back->stats.epochs[i];
    EXPECT_EQ(e.begin, r.stats.epochs[i].begin);
    EXPECT_EQ(e.end, r.stats.epochs[i].end);
    EXPECT_DOUBLE_EQ(e.avg_running_threads,
                     r.stats.epochs[i].avg_running_threads);
    EXPECT_EQ(e.counters.committed_useful,
              r.stats.epochs[i].counters.committed_useful);
    EXPECT_EQ(e.counters.l2_misses, r.stats.epochs[i].counters.l2_misses);
    EXPECT_DOUBLE_EQ(e.counters.slots[core::Slot::kUseful],
                     r.stats.epochs[i].counters.slots[core::Slot::kUseful]);
  }
  EXPECT_TRUE(back->sim_speed.measured);
  EXPECT_DOUBLE_EQ(back->sim_speed.wall_seconds, 0.25);
  EXPECT_EQ(back->sim_speed.sim_cycles, 1000u);
  EXPECT_EQ(back->sim_speed.committed, 4100u);
  EXPECT_TRUE(back->sim_speed.phases_measured);
  EXPECT_DOUBLE_EQ(
      back->sim_speed
          .phase_seconds[static_cast<std::size_t>(obs::Phase::kMemory)],
      0.125);

  // Sparkline rendering picks the series up from the parsed result.
  const std::string spark = sim::render_epoch_sparklines({*back});
  EXPECT_NE(spark.find("useful IPC"), std::string::npos);
  EXPECT_NE(spark.find("2 epochs of 500 cycles"), std::string::npos);
}

TEST(ObsJson, SpecIdentityIgnoresTraceKnobs) {
  sim::ExperimentSpec a, b;
  a.workload = b.workload = "fft";
  b.trace_path = "somewhere.json";
  b.profile_phases = true;
  EXPECT_TRUE(a == b);  // trace knobs never perturb RunStats
  b.metrics_interval = 100;
  EXPECT_FALSE(a == b);  // but the epoch series is part of the result
}

}  // namespace
}  // namespace csmt
