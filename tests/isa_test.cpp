// Unit tests for the ISA layer: opcode metadata (Table 1), the program
// builder (labels, registers, loops, sync regions), and the disassembler.
#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "isa/opcode.hpp"
#include "isa/program.hpp"

namespace csmt::isa {
namespace {

// ---------- opcode metadata --------------------------------------------

class OpInfoTest : public ::testing::TestWithParam<int> {};

TEST_P(OpInfoTest, MetadataIsSelfConsistent) {
  const Op op = static_cast<Op>(GetParam());
  const OpInfo& oi = op_info(op);
  EXPECT_NE(op_name(op), nullptr);
  EXPECT_GT(std::string(op_name(op)).size(), 0u);
  EXPECT_GE(oi.latency, 1);
  // Memory ops execute on the load/store unit.
  if (oi.is_load || oi.is_store) {
    EXPECT_EQ(oi.fu, FuClass::kLdSt);
  }
  // Atomics both read and write memory.
  if (oi.is_atomic) {
    EXPECT_TRUE(oi.is_load && oi.is_store);
  }
  // An instruction writes at most one register file.
  EXPECT_FALSE(oi.writes_int && oi.writes_fp);
  // Conditional branches are branches.
  if (oi.is_cond_branch) {
    EXPECT_TRUE(oi.is_branch);
  }
  // Branches do not write registers in this ISA.
  if (oi.is_branch) {
    EXPECT_FALSE(oi.writes_int || oi.writes_fp);
  }
  // rs1 belongs to exactly one register file.
  EXPECT_FALSE(oi.reads_int1 && oi.reads_fp1);
  EXPECT_FALSE(oi.reads_int2 && oi.reads_fp2);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpInfoTest,
                         ::testing::Range(0, static_cast<int>(kNumOps)));

TEST(OpInfo, Table1Latencies) {
  EXPECT_EQ(op_info(Op::kAdd).latency, 1);
  EXPECT_EQ(op_info(Op::kSll).latency, 1);
  EXPECT_EQ(op_info(Op::kMul).latency, 2);
  EXPECT_EQ(op_info(Op::kDiv).latency, 8);
  EXPECT_EQ(op_info(Op::kBeq).latency, 1);
  EXPECT_EQ(op_info(Op::kLd).latency, 2);
  EXPECT_EQ(op_info(Op::kSt).latency, 1);
  EXPECT_EQ(op_info(Op::kFadd).latency, 1);
  EXPECT_EQ(op_info(Op::kFmul).latency, 2);
  EXPECT_EQ(op_info(Op::kFdivS).latency, 4);
  EXPECT_EQ(op_info(Op::kFdivD).latency, 7);
}

TEST(OpInfo, FuClasses) {
  EXPECT_EQ(op_info(Op::kAdd).fu, FuClass::kInt);
  EXPECT_EQ(op_info(Op::kBne).fu, FuClass::kInt);
  EXPECT_EQ(op_info(Op::kLd).fu, FuClass::kLdSt);
  EXPECT_EQ(op_info(Op::kFst).fu, FuClass::kLdSt);
  EXPECT_EQ(op_info(Op::kFadd).fu, FuClass::kFp);
  EXPECT_EQ(op_info(Op::kNop).fu, FuClass::kNone);
  EXPECT_EQ(op_info(Op::kHalt).fu, FuClass::kNone);
}

TEST(OpInfo, SyncPrimitivesAreAtomicMemoryOps) {
  EXPECT_TRUE(op_info(Op::kSyncBarrier).is_atomic);
  EXPECT_TRUE(op_info(Op::kSyncLockAcq).is_atomic);
  EXPECT_TRUE(op_info(Op::kSyncLockRel).is_store);
  EXPECT_EQ(op_info(Op::kSyncBarrier).fu, FuClass::kLdSt);
}

// ---------- builder ------------------------------------------------------

TEST(Builder, EmitsAndResolvesLabels) {
  ProgramBuilder b("t");
  Reg r = b.ireg();
  Label skip = b.new_label();
  b.li(r, 1);
  b.beq(r, ProgramBuilder::zero(), skip);
  b.li(r, 2);
  b.bind(skip);
  b.halt();
  const Program p = b.take();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1).op, Op::kBeq);
  EXPECT_EQ(p.at(1).imm, 3);  // resolved to the instruction after "li r,2"
}

TEST(Builder, BackwardBranchTargets) {
  ProgramBuilder b("t");
  Reg r = b.ireg();
  b.li(r, 10);
  Label top = b.new_label();
  b.bind(top);
  b.addi(r, r, -1);
  b.bne(r, ProgramBuilder::zero(), top);
  b.halt();
  const Program p = b.take();
  EXPECT_EQ(p.at(2).imm, 1);
}

TEST(Builder, RegisterAllocationIsExclusive) {
  ProgramBuilder b("t");
  std::set<RegIdx> seen;
  for (int i = 0; i < 28; ++i) {
    const Reg r = b.ireg();
    EXPECT_GE(r.idx, 4);  // r0..r3 reserved
    EXPECT_TRUE(seen.insert(r.idx).second) << "duplicate register";
  }
}

TEST(Builder, ReleaseEnablesReuse) {
  ProgramBuilder b("t");
  const Reg a = b.ireg();
  const RegIdx idx = a.idx;
  b.release(a);
  const Reg c = b.ireg();
  EXPECT_EQ(c.idx, idx);
}

TEST(BuilderDeath, ExhaustingIntRegistersAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ProgramBuilder b("t");
        for (int i = 0; i < 29; ++i) b.ireg();
      },
      "exhausted");
}

TEST(BuilderDeath, DoubleReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ProgramBuilder b("t");
        Reg r = b.ireg();
        b.release(r);
        b.release(r);
      },
      "double release");
}

TEST(BuilderDeath, UnboundLabelAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ProgramBuilder b("t");
        Label l = b.new_label();
        b.j(l);
        b.take();
      },
      "unbound");
}

TEST(BuilderDeath, DoubleBindAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ProgramBuilder b("t");
        Label l = b.new_label();
        b.bind(l);
        b.bind(l);
      },
      "twice");
}

TEST(Builder, SyncRegionsTagInstructions) {
  ProgramBuilder b("t");
  Reg r = b.ireg();
  b.li(r, 1);
  b.sync_begin();
  b.addi(r, r, 1);
  b.sync_end();
  b.addi(r, r, 2);
  b.halt();
  const Program p = b.take();
  EXPECT_FALSE(p.at(0).sync_tag);
  EXPECT_TRUE(p.at(1).sync_tag);
  EXPECT_FALSE(p.at(2).sync_tag);
}

TEST(Builder, SyncPrimitivesAreSyncTagged) {
  ProgramBuilder b("t");
  Reg bar = b.ireg();
  b.li(bar, 64);
  b.barrier(bar, ProgramBuilder::nthreads());
  b.lock_acquire(bar);
  b.lock_release(bar);
  b.halt();
  const Program p = b.take();
  unsigned sync_count = 0;
  for (const Inst& inst : p.code()) sync_count += inst.sync_tag;
  EXPECT_EQ(sync_count, 3u);  // barrier + acquire + release
}

TEST(Builder, SpinBarrierEmitsSpinLoop) {
  ProgramBuilder b("t");
  Reg bar = b.ireg(), sense = b.ireg();
  b.li(bar, 64);
  b.li(sense, 0);
  b.spin_barrier(bar, sense, ProgramBuilder::nthreads());
  b.halt();
  const Program p = b.take();
  // The spin barrier is a real instruction sequence with an atomic and
  // loads, all sync-tagged.
  unsigned sync_count = 0, atomics = 0, loads = 0;
  for (const Inst& inst : p.code()) {
    sync_count += inst.sync_tag;
    atomics += inst.info().is_atomic;
    loads += inst.op == Op::kLd;
  }
  EXPECT_GT(sync_count, 10u);
  EXPECT_EQ(atomics, 1u);  // the amoadd
  EXPECT_GE(loads, 1u);    // the spin load
}

TEST(Builder, ForRangeGuardsEmptyRanges) {
  // for (i = 5; i < bound(=5); ...) must execute zero iterations: the
  // first emitted instruction after li is a guard branch.
  ProgramBuilder b("t");
  Reg i = b.ireg(), bound = b.ireg();
  b.li(bound, 5);
  b.for_range(i, 5, bound, 1, [&] { b.nop(); });
  b.halt();
  const Program p = b.take();
  EXPECT_EQ(p.at(2).op, Op::kBge);  // li bound, li i, then the guard
}

TEST(BuilderDeath, UnbalancedSyncAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ProgramBuilder b("t");
        b.sync_begin();
        b.halt();
        b.take();
      },
      "unbalanced");
}

// ---------- disassembler -------------------------------------------------

TEST(Disasm, RendersCommonForms) {
  ProgramBuilder b("t");
  Reg r = b.ireg();
  Freg f = b.freg();
  b.li(r, 42);
  b.ld(r, ProgramBuilder::args(), 16);
  b.fadd(f, f, f);
  b.halt();
  const Program p = b.take();
  const std::string text = p.disassemble();
  EXPECT_NE(text.find("li"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("fadd"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
  EXPECT_NE(text.find("\"t\""), std::string::npos);
}

TEST(Disasm, MarksSyncInstructions) {
  ProgramBuilder b("t");
  Reg bar = b.ireg();
  b.li(bar, 64);
  b.barrier(bar, ProgramBuilder::nthreads());
  b.halt();
  const std::string text = b.take().disassemble();
  EXPECT_NE(text.find("; sync"), std::string::npos);
}

}  // namespace
}  // namespace csmt::isa
