// Equivalence and guard-rail tests for the parallel simulation kernel
// (DESIGN.md §13): ticking chip domains on worker lanes behind deterministic
// cycle barriers must be invisible in every artifact. The grid test compares
// full serialized results between --parallel-chips and the sequential
// kernel; the trace test compares Chrome-trace files byte for byte on a
// multiprogrammed 4-chip mix; the resume test crosses kernels through a
// checkpoint in both directions; and the clamp tests pin the sweep's
// oversubscription math.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sweep/sweep.hpp"
#include "workloads/workload.hpp"

namespace csmt::sim {
namespace {

namespace fs = std::filesystem;

/// Serializes bare RunStats at full precision (every counter, double, and
/// epoch sample) with the host-dependent speed block and resume cycle
/// defaulted, so runs from different kernels — or resumed runs — compare
/// byte for byte on simulated state only.
std::string stats_json(const RunStats& stats) {
  ExperimentResult r;
  r.spec.workload = "direct";
  r.stats = stats;
  return render_json({std::move(r)});
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(ParallelKernel, GridMatchesSequentialBitForBit) {
  // The golden grid: 4 archs x {1, 4} chips x 3 workloads x both scheduler
  // kernels. chips=1 exercises the "pool degrades to sequential" edge; the
  // no_skip axis proves lane parallelism composes with the per-cycle
  // kernel too.
  const std::vector<core::ArchKind> archs = {
      core::ArchKind::kFa1, core::ArchKind::kFa2, core::ArchKind::kSmt2,
      core::ArchKind::kSmt4};
  const std::vector<std::string> workloads = {"swim", "mgrid", "ocean"};
  for (const bool no_skip : {false, true}) {
    for (const unsigned chips : {1u, 4u}) {
      for (const core::ArchKind arch : archs) {
        for (const std::string& wl : workloads) {
          ExperimentSpec spec;
          spec.workload = wl;
          spec.arch = arch;
          spec.chips = chips;
          spec.scale = 1;
          spec.metrics_interval = 128;  // the epoch series must match too
          spec.no_skip = no_skip;
          const std::string where =
              wl + "/" + core::arch_name(arch) + "/chips=" +
              std::to_string(chips) + (no_skip ? "/no_skip" : "/skip");

          spec.parallel_chips = 0;
          const ExperimentResult seq = run_experiment(spec);
          spec.parallel_chips = 4;
          const ExperimentResult par = run_experiment(spec);

          EXPECT_TRUE(par.validated) << where;
          EXPECT_EQ(stats_json(seq.stats), stats_json(par.stats)) << where;
          // Skip-ahead decisions must be identical as well, not merely the
          // final counters.
          EXPECT_EQ(seq.sim_speed.quiet_cycles, par.sim_speed.quiet_cycles)
              << where;
          // The artifact records the kernel actually used: lanes clamp to
          // the chip count, and one lane is the sequential kernel.
          EXPECT_EQ(seq.sim_speed.parallel_chips, 0u) << where;
          EXPECT_EQ(par.sim_speed.parallel_chips, chips > 1 ? 4u : 0u)
              << where;
          EXPECT_GT(par.sim_speed.host_threads, 0u) << where;
        }
      }
    }
  }
}

TEST(ParallelKernel, ChromeTraceBytesMatchOnMultiprogramMix) {
  // Per-chip trace shards flushed in chip order at the barrier must
  // reproduce the sequential kernel's event stream exactly — including
  // interleaving across two jobs sharing a 4-chip machine.
  auto run_traced = [](unsigned parallel, const std::string& path) {
    obs::ChromeTraceWriter writer(path);
    ASSERT_TRUE(writer.ok());
    MachineConfig mc;
    mc.arch = core::arch_preset(core::ArchKind::kSmt2);
    mc.chips = 4;
    mc.parallel_chips = parallel;
    mc.trace = &writer;
    Machine machine(mc);
    const auto wla = workloads::make_workload("vpenta");
    const auto wlb = workloads::make_workload("fmm");
    mem::PagedMemory mem_a, mem_b;
    const unsigned total = mc.total_threads();
    const unsigned ta = total / 2, tb = total - total / 2;
    const auto ba = wla->build(mem_a, ta, 1);
    const auto bb = wlb->build(mem_b, tb, 1);
    const std::vector<Job> jobs = {
        {&ba.program, &mem_a, ba.args_base, ta},
        {&bb.program, &mem_b, bb.args_base, tb},
    };
    const MultiRunStats r = machine.run(Mix{jobs});
    EXPECT_FALSE(r.combined.timed_out);
    writer.finish();
  };

  const std::string seq_path =
      (fs::path(::testing::TempDir()) / "pk_seq_trace.json").string();
  const std::string par_path =
      (fs::path(::testing::TempDir()) / "pk_par_trace.json").string();
  run_traced(0, seq_path);
  run_traced(4, par_path);

  const std::string seq_bytes = read_file(seq_path);
  const std::string par_bytes = read_file(par_path);
  ASSERT_FALSE(seq_bytes.empty());
  EXPECT_EQ(seq_bytes, par_bytes);
  fs::remove(seq_path);
  fs::remove(par_path);
}

/// Runs `spec` with the watchdog set to abort at `max_cycles`, snapshotting
/// to `path` every `interval` cycles under the requested kernel.
RunStats run_killed(const ExperimentSpec& spec, unsigned parallel,
                    Cycle max_cycles, Cycle interval,
                    const std::string& path, std::uint64_t tag) {
  MachineConfig mc;
  mc.arch = core::arch_preset(spec.arch);
  mc.chips = spec.chips;
  mc.metrics_interval = spec.metrics_interval;
  mc.parallel_chips = parallel;
  mc.max_cycles = max_cycles;
  mc.ckpt_interval = interval;
  mc.ckpt_path = path;
  mc.ckpt_spec_hash = tag;
  Machine machine(mc);
  const auto wl = workloads::make_workload(spec.workload);
  mem::PagedMemory memory;
  const workloads::WorkloadBuild build =
      wl->build(memory, mc.total_threads(), spec.scale);
  return machine
      .run(Mix::single(build.program, memory, build.args_base,
                       mc.total_threads()))
      .combined;
}

TEST(ParallelKernel, CrossKernelCkptResumeBothDirections) {
  // A checkpoint is kernel-neutral: a run killed under either kernel must
  // resume under the other and finish bit-identical to the uninterrupted
  // sequential reference.
  ExperimentSpec spec;
  spec.workload = "ocean";
  spec.arch = core::ArchKind::kSmt4;
  spec.chips = 4;
  spec.scale = 1;
  spec.metrics_interval = 128;
  const ExperimentResult ref = run_experiment(spec);
  ASSERT_FALSE(ref.stats.timed_out);
  ASSERT_GT(ref.stats.cycles, 8u);
  const Cycle interval = std::max<Cycle>(ref.stats.cycles / 4, 1);
  constexpr std::uint64_t kTag = 0xC805;

  unsigned leg = 0;
  for (const auto& [kill_lanes, resume_lanes] :
       {std::pair<unsigned, unsigned>{0, 4},
        std::pair<unsigned, unsigned>{4, 0}}) {
    const std::string where = "kill_lanes=" + std::to_string(kill_lanes) +
                              "/resume_lanes=" + std::to_string(resume_lanes);
    const std::string path =
        (fs::path(::testing::TempDir()) /
         ("pk-cross-" + std::to_string(leg++) + ".ckpt"))
            .string();
    fs::remove(path);

    const RunStats partial = run_killed(spec, kill_lanes,
                                        ref.stats.cycles / 2, interval, path,
                                        kTag);
    ASSERT_TRUE(partial.timed_out) << where;
    ASSERT_TRUE(fs::exists(path)) << where;

    ExperimentSpec resume = spec;
    resume.parallel_chips = resume_lanes;
    resume.ckpt_interval = interval;
    resume.ckpt_path = path;
    resume.ckpt_tag = kTag;
    const ExperimentResult resumed = run_experiment(resume);
    ASSERT_GT(resumed.resumed_from_cycle, 0u) << where;
    EXPECT_TRUE(resumed.validated) << where;
    EXPECT_EQ(stats_json(resumed.stats), stats_json(ref.stats)) << where;
    fs::remove(path);
  }
}

TEST(ParallelKernel, SweepClampMath) {
  using sweep::clamp_parallel_chips;
  // Sequential requests and unknown hardware width never clamp.
  EXPECT_EQ(clamp_parallel_chips(0, 8, 4), 0u);
  EXPECT_EQ(clamp_parallel_chips(1, 8, 4), 1u);
  EXPECT_EQ(clamp_parallel_chips(4, 8, 0), 4u);
  // Grids that fit pass through untouched (boundary included).
  EXPECT_EQ(clamp_parallel_chips(4, 2, 8), 4u);
  EXPECT_EQ(clamp_parallel_chips(4, 2, 16), 4u);
  EXPECT_EQ(clamp_parallel_chips(2, 1, 2), 2u);
  // Oversubscribed grids clamp to floor(hw / jobs), never below 1.
  EXPECT_EQ(clamp_parallel_chips(4, 4, 8), 2u);
  EXPECT_EQ(clamp_parallel_chips(8, 3, 8), 2u);
  EXPECT_EQ(clamp_parallel_chips(4, 16, 8), 1u);
  EXPECT_EQ(clamp_parallel_chips(2, 1, 1), 1u);
  // jobs 0 (auto) is treated as one worker.
  EXPECT_EQ(clamp_parallel_chips(4, 0, 2), 2u);
}

TEST(ParallelKernel, EnvAndSpecPlumbing) {
  setenv("CSMT_PARALLEL_CHIPS", "4", 1);
  EXPECT_EQ(cli::Options::from_env().parallel_chips, 4u);
  setenv("CSMT_PARALLEL_CHIPS", "not-a-number", 1);
  EXPECT_EQ(cli::Options::from_env().parallel_chips, 0u);
  unsetenv("CSMT_PARALLEL_CHIPS");
  EXPECT_EQ(cli::Options::from_env().parallel_chips, 0u);

  // The kernel choice is stamped grid-wide but stays out of the cache
  // identity: both kernels' results are interchangeable.
  sweep::SweepSpec grid;
  grid.workloads = {"swim"};
  grid.archs = {core::ArchKind::kSmt2};
  grid.chips = {4};
  grid.parallel_chips = 4;
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].parallel_chips, 4u);
  sim::ExperimentSpec sequential = points[0];
  sequential.parallel_chips = 0;
  EXPECT_TRUE(sequential == points[0]);
  EXPECT_EQ(sweep::spec_hash(sequential), sweep::spec_hash(points[0]));
}

}  // namespace
}  // namespace csmt::sim
